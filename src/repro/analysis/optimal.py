"""Offline optimal page placement with future knowledge (Toptimal).

Section 3.1: "Toptimal is total user time when running under a page
placement strategy that minimizes the sum of user and NUMA-related system
time using future knowledge.  We would have liked to compare Tnuma to
Toptimal but had no way to measure the latter."  A trace-driven simulator
*can* measure it: for every page we run a dynamic program over the page's
reference trace whose states are the placements the protocol could hold —
global, local-writable on some processor, or read-only replicated on a set
of processors — with transition costs equal to the protocol's page-copy
and remapping costs.  The per-page minima sum to a placement cost no
online policy can beat, which, added to the trace's compute time, bounds
Toptimal from below.

``benchmarks/bench_optimal.py`` uses this to validate the paper's central
claim: that the simple threshold policy is close to optimal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple, Union

from repro.analysis.tracing import RefEvent, TraceCollector
from repro.machine.timing import MemoryLocation, TimingModel

#: DP state encodings: global, local-writable on a cpu, replicated on set.
_GLOBAL = ("G",)
_State = Union[
    Tuple[str],  # ("G",)
    Tuple[str, int],  # ("L", cpu)
    Tuple[str, FrozenSet[int]],  # ("R", cpus)
]


@dataclass(frozen=True)
class CompressedBlock:
    """Consecutive same-CPU references to a page, merged."""

    cpu: int
    reads: int
    writes: int


def compress_events(events: List[RefEvent]) -> List[CompressedBlock]:
    """Merge consecutive blocks from the same CPU (placement-equivalent)."""
    merged: List[CompressedBlock] = []
    for event in events:
        if merged and merged[-1].cpu == event.cpu:
            last = merged[-1]
            merged[-1] = CompressedBlock(
                cpu=last.cpu,
                reads=last.reads + event.reads,
                writes=last.writes + event.writes,
            )
        else:
            merged.append(
                CompressedBlock(
                    cpu=event.cpu, reads=event.reads, writes=event.writes
                )
            )
    return merged


class _CostModel:
    """Transition and service costs matching the action executor."""

    def __init__(self, timing: TimingModel) -> None:
        self._timing = timing
        self._copy_in = timing.page_copy_us(
            MemoryLocation.GLOBAL, MemoryLocation.LOCAL
        )
        self._sync_own = timing.page_copy_us(
            MemoryLocation.LOCAL, MemoryLocation.GLOBAL
        )
        self._sync_other = timing.page_copy_us(
            MemoryLocation.REMOTE, MemoryLocation.GLOBAL
        )
        self._overhead = timing.fault_overhead_us + timing.mapping_op_us

    def service(self, local: bool, reads: int, writes: int) -> float:
        location = MemoryLocation.LOCAL if local else MemoryLocation.GLOBAL
        return self._timing.block_us(location, reads, writes)

    def transition(self, old: _State, new: _State) -> float:
        """Cost to change the page's placement from *old* to *new*."""
        if old == new:
            return 0.0
        cost = self._overhead
        old_kind = old[0]
        new_kind = new[0]
        # Step 1: make global current (sync) if leaving a dirty local copy.
        if old_kind == "L":
            cost += self._sync_other
        # Step 2: populate the new placement.
        if new_kind == "L":
            if not (old_kind == "R" and new[1] in old[1]):
                cost += self._copy_in
        elif new_kind == "R":
            new_set = new[1]
            if old_kind == "R":
                fresh = new_set - old[1]
            elif old_kind == "L" and old[1] in new_set:
                fresh = new_set - {old[1]}
            else:
                fresh = new_set
            cost += len(fresh) * self._copy_in
        return cost


def optimal_page_cost(
    events: List[RefEvent], timing: TimingModel
) -> float:
    """Minimum placement cost for one page's trace (DP over placements)."""
    blocks = compress_events(events)
    if not blocks:
        return 0.0
    model = _CostModel(timing)
    # Start in global (pages are born in/backed by global memory).
    frontier: Dict[_State, float] = {_GLOBAL: 0.0}
    for block in blocks:
        candidates = _serving_states(block, frontier)
        new_frontier: Dict[_State, float] = {}
        for serve in candidates:
            local = serve[0] != "G"
            service = model.service(local, block.reads, block.writes)
            best = min(
                cost + model.transition(state, serve)
                for state, cost in frontier.items()
            )
            total = best + service
            if total < new_frontier.get(serve, float("inf")):
                new_frontier[serve] = total
        frontier = new_frontier
    return min(frontier.values())


def _serving_states(
    block: CompressedBlock, frontier: Dict[_State, float]
) -> List[_State]:
    """Placements able to serve *block*."""
    cpu = block.cpu
    states: List[_State] = [_GLOBAL, ("L", cpu)]
    if block.writes == 0:
        # Reads can also be served by replication; consider extending any
        # replica set in the frontier with this reader, plus a fresh set.
        seen = {frozenset({cpu})}
        states.append(("R", frozenset({cpu})))
        for state in frontier:
            if state[0] == "R":
                extended = state[1] | {cpu}
                if extended not in seen:
                    seen.add(extended)
                    states.append(("R", extended))
    return states


def protocol_cost_us(stats, timing: TimingModel) -> float:
    """Placement-related system time implied by a run's action counts.

    The DP's transition costs cover page copies and per-transition
    overhead but not zero-fill (every placement pays it) or syscall
    service time, so the fair "actual" figure is reconstructed from the
    same ingredients: syncs, copies-to-local, and fault-path overheads.
    """
    sync = timing.page_copy_us(MemoryLocation.REMOTE, MemoryLocation.GLOBAL)
    copy = timing.page_copy_us(MemoryLocation.GLOBAL, MemoryLocation.LOCAL)
    per_fault = timing.fault_overhead_us + timing.mapping_op_us
    return (
        stats.syncs * sync
        + stats.copies_to_local * copy
        + stats.total_faults() * per_fault
    )


@dataclass(frozen=True)
class OptimalComparison:
    """Placement cost of a run versus the offline optimum."""

    #: Data-reference time actually paid (user, from the trace) plus the
    #: protocol's copying/remapping system time.
    actual_us: float
    #: The DP lower bound for the same reference trace.
    optimal_us: float
    #: Pages analyzed.
    n_pages: int

    @property
    def ratio(self) -> float:
        """actual / optimal; 1.0 means the policy was perfect."""
        if self.optimal_us == 0:
            return 1.0
        return self.actual_us / self.optimal_us


def compare_to_optimal(
    trace: TraceCollector,
    timing: TimingModel,
    protocol_system_us: float,
    writable_only: bool = True,
) -> OptimalComparison:
    """Compare a run's actual placement cost with the offline optimum.

    ``protocol_system_us`` is the NUMA-related system time the run paid
    (copies, remapping) — the run's total system time is a reasonable
    stand-in given that fault overheads exist in both.
    """
    actual = protocol_system_us
    optimal = 0.0
    pages = 0
    for _, events in trace.by_vpage().items():
        relevant = [e for e in events if e.writable_data or not writable_only]
        if not relevant:
            continue
        pages += 1
        for event in relevant:
            actual += timing.block_us(
                event.location, event.reads, event.writes
            )
        optimal += optimal_page_cost(relevant, timing)
    return OptimalComparison(
        actual_us=actual, optimal_us=optimal, n_pages=pages
    )
