"""IPC-bus utilization analysis.

Section 2.2: non-local requests travel over "a 32-bit wide, 80 Mbyte/sec
Inter-Processor Communication (IPC) bus designed to support 16 processors
and 256 Mbytes of global memory".  Section 3.1's methodology *assumes*
the applications are "relatively free of lock, bus or memory contention";
with the simulator's exact counts of global references, remote references
and page copies we can check that assumption instead of making it.

The model: every bus word (global or remote reference, each word of a
page copy or global zero-fill) occupies the bus for ``4 bytes / 80 MB/s =
0.05 µs``.  Utilization ρ is bus-busy time over the run's elapsed time
(approximated by the busiest processor's virtual time).  An M/M/1-style
``1 / (1 - ρ)`` factor estimates how much contention would stretch the
non-local references the timing model priced contention-free — small
where the paper's assumption holds, and visibly not small for a
deliberately bus-hostile configuration.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.machine.config import MachineConfig
from repro.machine.timing import MemoryLocation
from repro.sim.result import RunResult

#: The ACE IPC bus: 80 MB/s moving 4-byte words.
BUS_BYTES_PER_US = 80.0
WORD_BYTES = 4.0
BUS_WORD_US = WORD_BYTES / BUS_BYTES_PER_US  # 0.05 µs per word


@dataclass(frozen=True)
class BusReport:
    """Bus traffic and utilization for one run."""

    #: Words moved across the bus by user references (global + remote).
    reference_words: int
    #: Words moved by the protocol (copies, syncs, global zero-fills).
    protocol_words: int
    #: Bus-busy time, microseconds.
    busy_us: float
    #: The run's elapsed time (busiest processor), microseconds.
    elapsed_us: float

    @property
    def total_words(self) -> int:
        """All words carried by the bus."""
        return self.reference_words + self.protocol_words

    @property
    def utilization(self) -> float:
        """ρ: fraction of the run the bus was busy (can exceed 1 when the
        offered load is infeasible — the run would simply take longer)."""
        if self.elapsed_us <= 0:
            return 0.0
        return self.busy_us / self.elapsed_us

    @property
    def contention_factor(self) -> float:
        """Estimated stretch of non-local reference times, ``1/(1-ρ)``.

        Saturated (ρ ≥ 0.95) loads report the capped factor 20: the
        queueing approximation is meaningless past saturation, but the
        verdict ("this run was NOT contention-free") stands.
        """
        rho = min(self.utilization, 0.95)
        return 1.0 / (1.0 - rho)

    @property
    def contention_free(self) -> bool:
        """The Section 3.1 assumption: contention would change times by
        less than ~11% (ρ below 0.1)."""
        return self.utilization < 0.10


def analyze_bus(result: RunResult, config: MachineConfig) -> BusReport:
    """Compute bus traffic and utilization for a completed run."""
    if config.page_size_words < 1:
        raise ConfigurationError("page size must be positive")
    refs = result.all_refs
    reference_words = refs.total_to(MemoryLocation.GLOBAL) + refs.total_to(
        MemoryLocation.REMOTE
    )
    stats = result.stats
    # Each page copy crosses the bus once in each direction's non-local
    # leg: copy-to-local reads global (page_size words), sync writes
    # global (page_size words); a global zero-fill writes page_size words.
    protocol_pages = (
        stats.copies_to_local + stats.syncs + stats.global_zero_fills
    )
    protocol_words = protocol_pages * config.page_size_words
    busy_us = (reference_words + protocol_words) * BUS_WORD_US
    elapsed_us = max((t.total_us for t in result.per_cpu), default=0.0)
    return BusReport(
        reference_words=reference_words,
        protocol_words=protocol_words,
        busy_us=busy_us,
        elapsed_us=elapsed_us,
    )
