"""The paper's execution-time model (Section 3.1, Equations 1-5).

The model decomposes NUMA-managed run time as

    Tnuma = Tlocal * ((1 - beta) + beta * (alpha + (1 - alpha) * G/L))   (2)

where α is the fraction of writable-data references that hit local memory
and β is the fraction of run time spent referencing writable data were all
memory local.  Setting α = 0 gives the all-global model (3); solving the
two simultaneously recovers

    alpha = (Tglobal - Tnuma) / (Tglobal - Tlocal)                       (4)
    beta  = ((Tglobal - Tlocal) / Tlocal) * (L / (G - L))                (5)

and the user-time expansion factor is γ = Tnuma / Tlocal (Equation 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError

#: Relative Tglobal-Tlocal difference below which α is meaningless (the
#: application barely references writable data, so the division in
#: Equation 4 is 0/0; the paper reports "na" for ParMult's α).
_NEGLIGIBLE_SPREAD = 1e-3


@dataclass(frozen=True)
class ModelParameters:
    """α, β, γ recovered from the three measured times."""

    alpha: Optional[float]
    beta: float
    gamma: float

    def format_alpha(self) -> str:
        """α as the paper prints it (two digits, or "na")."""
        if self.alpha is None:
            return "na"
        return f"{self.alpha:.2f}"


def gamma(t_numa: float, t_local: float) -> float:
    """Equation 1: the user-time expansion factor γ."""
    if t_local <= 0:
        raise ConfigurationError("Tlocal must be positive")
    return t_numa / t_local


def solve_beta(t_global: float, t_local: float, g_over_l: float) -> float:
    """Equation 5: fraction of time spent on writable-data references."""
    if t_local <= 0:
        raise ConfigurationError("Tlocal must be positive")
    if g_over_l <= 1.0:
        raise ConfigurationError("G/L must exceed 1 on a NUMA machine")
    return ((t_global - t_local) / t_local) * (1.0 / (g_over_l - 1.0))


def solve_alpha(
    t_global: float, t_numa: float, t_local: float
) -> Optional[float]:
    """Equation 4: fraction of writable-data references made local.

    Returns ``None`` when Tglobal ≈ Tlocal — the application spends no
    measurable time on writable data, so α is undefined.
    """
    if t_local <= 0:
        raise ConfigurationError("Tlocal must be positive")
    spread = t_global - t_local
    if spread <= _NEGLIGIBLE_SPREAD * t_local:
        return None
    return (t_global - t_numa) / spread


def solve(
    t_global: float, t_numa: float, t_local: float, g_over_l: float
) -> ModelParameters:
    """Recover all three model parameters from the measured times."""
    return ModelParameters(
        alpha=solve_alpha(t_global, t_numa, t_local),
        beta=solve_beta(t_global, t_local, g_over_l),
        gamma=gamma(t_numa, t_local),
    )


def predict_t_numa(
    t_local: float, alpha: float, beta: float, g_over_l: float
) -> float:
    """Equation 2: forward model, for round-trip validation."""
    if not 0.0 <= alpha <= 1.0:
        raise ConfigurationError("alpha must be within [0, 1]")
    if beta < 0.0:
        raise ConfigurationError("beta cannot be negative")
    return t_local * ((1.0 - beta) + beta * (alpha + (1.0 - alpha) * g_over_l))


def predict_t_global(t_local: float, beta: float, g_over_l: float) -> float:
    """Equation 3: the all-global model (Equation 2 with α = 0)."""
    return predict_t_numa(t_local, 0.0, beta, g_over_l)
