"""slp-style *versus* plots, rendered as deterministic ASCII.

MBradbury/slp's ``data.graph.versus`` plots one result metric against a
swept parameter, one line per configuration, with error bars across
repeats.  The cache-backed report needs the same shape but has to stay
dependency-free and byte-identical across regenerations, so the plots
here are plain text: one banded strip per x value showing the
``min ═ mean ═ max`` spread of the metric at that point (seeds of a
chaos fan, applications of a grid, or a single deterministic run where
the band collapses to its mean marker).

:func:`versus_plot` renders prepared series; :func:`versus_from_table`
lifts them straight out of a :class:`~repro.analysis.frames.DataTable`,
which is how :mod:`repro.analysis.cachereport` builds the
metric-vs-threshold and seed-fan figures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.frames import DataTable, format_cell, _sort_token

#: Character width of the band strip.
_STRIP_WIDTH = 40


@dataclass(frozen=True)
class VersusSeries:
    """One line of a versus plot: x → the metric's samples at that x."""

    name: str
    #: x value → every observed metric value (1 sample: band collapses).
    points: Tuple[Tuple[object, Tuple[float, ...]], ...]

    @classmethod
    def from_mapping(
        cls, name: str, points: Dict[object, Sequence[float]]
    ) -> "VersusSeries":
        ordered = sorted(points.items(), key=lambda kv: _sort_token(kv[0]))
        return cls(
            name=name,
            points=tuple(
                (x, tuple(float(v) for v in values))
                for x, values in ordered
                if values
            ),
        )

    def bounds(self) -> Tuple[float, float]:
        """The series' (lowest, highest) observed metric value."""
        lows = [min(values) for _, values in self.points]
        highs = [max(values) for _, values in self.points]
        return min(lows), max(highs)


def _strip(low: float, mean: float, high: float,
           lo_bound: float, hi_bound: float) -> str:
    """One band line: ``═`` spans min..max, ``●`` marks the mean."""
    span = hi_bound - lo_bound

    def slot(value: float) -> int:
        if span <= 0:
            return _STRIP_WIDTH // 2
        frac = (value - lo_bound) / span
        return min(_STRIP_WIDTH - 1, max(0, round(frac * (_STRIP_WIDTH - 1))))

    cells = [" "] * _STRIP_WIDTH
    for i in range(slot(low), slot(high) + 1):
        cells[i] = "="
    cells[slot(mean)] = "*"
    return "".join(cells)


def versus_plot(
    series: Sequence[VersusSeries],
    xlabel: str,
    ylabel: str,
    title: Optional[str] = None,
    float_digits: int = 4,
) -> str:
    """Render *series* as banded ASCII strips on one shared y scale."""
    drawn = [s for s in series if s.points]
    if not drawn:
        return f"{title or ylabel}: no data points"
    lo = min(s.bounds()[0] for s in drawn)
    hi = max(s.bounds()[1] for s in drawn)
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(
        f"{ylabel} vs {xlabel}   "
        f"[y: {format_cell(lo, float_digits)} .. "
        f"{format_cell(hi, float_digits)}]"
    )
    header = f"  {xlabel:>10s}  {'min':>10s}  {'mean':>10s}  {'max':>10s}"
    for s in drawn:
        if len(drawn) > 1 or s.name:
            lines.append(f"-- {s.name}")
        lines.append(header)
        for x, values in s.points:
            low, high = min(values), max(values)
            mean = sum(values) / len(values)
            lines.append(
                f"  {format_cell(x, float_digits):>10s}  "
                f"{format_cell(low, float_digits):>10s}  "
                f"{format_cell(mean, float_digits):>10s}  "
                f"{format_cell(high, float_digits):>10s}  "
                f"|{_strip(low, mean, high, lo, hi)}|"
            )
    return "\n".join(lines)


def versus_from_table(
    table: DataTable,
    x: str,
    y: str,
    series_by: Optional[str] = None,
    xlabel: Optional[str] = None,
    title: Optional[str] = None,
    float_digits: int = 4,
) -> str:
    """Plot column *y* against column *x*, one series per *series_by* value.

    Rows whose *x* or *y* is ``None`` are dropped; multiple rows landing
    on the same (series, x) point become that point's min/mean/max band
    — exactly what a seed fan wants.
    """
    buckets: Dict[str, Dict[object, List[float]]] = {}
    for row in table.rows:
        if row.get(x) is None or row.get(y) is None:
            continue
        name = format_cell(row.get(series_by)) if series_by else ""
        buckets.setdefault(name, {}).setdefault(
            row[x], []
        ).append(float(row[y]))  # type: ignore[arg-type]
    series = [
        VersusSeries.from_mapping(name, points)
        for name, points in sorted(buckets.items())
    ]
    return versus_plot(
        series,
        xlabel=xlabel or x,
        ylabel=y,
        title=title,
        float_digits=float_digits,
    )
