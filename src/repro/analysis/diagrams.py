"""Figures 1 and 2, regenerated from live objects.

The paper's two figures are architecture diagrams, not data plots:
Figure 1 is the ACE memory architecture, Figure 2 the module structure of
the ACE pmap layer.  We regenerate them from the actual configuration and
the actual module wiring, so a change to either is visible in the figure
benches.
"""

from __future__ import annotations

from repro.machine.config import MachineConfig


def figure1(config: MachineConfig) -> str:
    """Figure 1: the ACE memory architecture, for a given configuration."""
    mb_local = config.local_bytes_per_cpu // (1024 * 1024)
    mb_global = config.global_bytes // (1024 * 1024)
    local_label = f"{mb_local}MB local".center(11)
    cpu_box = (
        "+-----------+\n"
        "| processor |\n"
        "|    mmu    |\n"
        f"|{local_label}|\n"
        "+-----------+"
    )
    cpu_lines = cpu_box.split("\n")
    shown = min(config.n_processors, 3)
    columns = [cpu_lines] * shown
    joint = []
    for i in range(len(cpu_lines)):
        middle = "   " if config.n_processors <= shown else " … "
        joint.append(middle.join(col[i] for col in columns))
    n_hidden = config.n_processors - shown
    header = (
        f"ACE: {config.n_processors} processor modules"
        + (f" ({n_hidden} not drawn)" if n_hidden > 0 else "")
        + f", {mb_global}MB global memory"
    )
    bus_width = len(joint[0])
    lines = [header, ""]
    lines.extend(joint)
    lines.append("      |" + " " * (bus_width - 14) + "|")
    lines.append("=" * bus_width + "  <- 80 MB/s IPC bus")
    lines.append("      |")
    lines.append("+---------------+     +---------------+")
    lines.append(
        f"| global memory |     | global memory |   ({mb_global}MB total)"
    )
    lines.append("+---------------+     +---------------+")
    return "\n".join(lines)


def figure2() -> str:
    """Figure 2: the ACE pmap layer's module structure.

    Verified against the live classes: the pmap manager
    (:class:`repro.vm.pmap.ACEPmap`) sits under the machine-independent
    VM, coordinates the MMU interface (:class:`repro.machine.mmu.MMU`)
    and the NUMA manager (:class:`repro.core.numa_manager.NUMAManager`),
    and the NUMA manager consults the policy
    (:class:`repro.core.policy.NUMAPolicy`) through ``cache_policy``.
    """
    return "\n".join(
        [
            "         Mach machine-independent VM",
            "                    |",
            "             [pmap interface]",
            "                    |",
            "       +---------------------------+",
            "       |       pmap manager        |   repro.vm.pmap.ACEPmap",
            "       +---------------------------+",
            "            |                |",
            "   +----------------+  +--------------+",
            "   | MMU interface  |  | NUMA manager |",
            "   | (Rosetta)      |  +--------------+",
            "   +----------------+        |",
            "   repro.machine.mmu   [cache_policy]",
            "                              |",
            "                      +--------------+",
            "                      | NUMA policy  |",
            "                      +--------------+",
            "                      repro.core.policy",
        ]
    )


def wiring_report() -> str:
    """Cross-check Figure 2 against the importable module structure."""
    from repro.core.numa_manager import NUMAManager
    from repro.core.policy import NUMAPolicy
    from repro.machine.mmu import MMU
    from repro.vm.pmap import ACEPmap

    checks = [
        ("pmap manager", ACEPmap.__module__),
        ("MMU interface", MMU.__module__),
        ("NUMA manager", NUMAManager.__module__),
        ("NUMA policy", NUMAPolicy.__module__),
    ]
    return "\n".join(f"{name:15s} -> {module}" for name, module in checks)
