"""A dependency-free tabular core for the cache-backed reporting layer.

:class:`DataTable` is the one data structure every derived-metric table,
versus-plot and emitter in :mod:`repro.analysis.cachereport` operates
on: a list of flat row dictionaries with a stable column order, plus the
relational verbs a report generator needs — ``where``, ``select``,
``sort_by``, ``group_by``, ``aggregate`` and ``pivot``.  It deliberately
reimplements none of pandas: rows are plain dicts, values are plain
scalars, and every operation is deterministic (group keys sort, column
order is first-seen), which is what makes a report regenerated from the
same cache byte-identical.

Emitters cover the three formats the paper pipeline publishes in:
GitHub-flavoured markdown (``to_markdown``), CSV (``to_csv``) and a
booktabs-style LaTeX tabular (``to_latex``), plus the repo's classic
fixed-width plain text (``to_text``).  All four share one cell
formatter so a number renders identically everywhere.
"""

from __future__ import annotations

import io
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

Row = Dict[str, object]
#: An aggregation: builtin name or a callable over the grouped values.
Aggregation = Union[str, Callable[[Sequence[object]], object]]

#: Builtin aggregation functions, all total over empty input except
#: the order statistics (which never see empty groups — a group exists
#: because at least one row landed in it).
_AGGREGATIONS: Dict[str, Callable[[Sequence[object]], object]] = {
    "count": len,
    "sum": lambda values: sum(values),
    "min": min,
    "max": max,
    "mean": lambda values: sum(values) / len(values),
    "first": lambda values: values[0],
    "last": lambda values: values[-1],
}


def format_cell(value: object, float_digits: int = 4) -> str:
    """One canonical cell rendering shared by every emitter.

    ``None`` prints as ``na`` (the paper's marker), booleans as
    lowercase words, floats trimmed to *float_digits* with trailing
    zeros removed so ``1.0`` and ``1.2500`` render as ``1`` and
    ``1.25`` in every output format alike.
    """
    if value is None:
        return "na"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        text = f"{value:.{float_digits}f}".rstrip("0").rstrip(".")
        return text if text not in ("", "-", "-0") else "0"
    return str(value)


def _sort_token(value: object) -> Tuple[int, str, object]:
    """A total order over mixed-type cells (None first, then by type)."""
    if value is None:
        return (0, "", "")
    if isinstance(value, bool):
        return (1, "", int(value))
    if isinstance(value, (int, float)):
        return (2, "", float(value))
    return (3, type(value).__name__, str(value))


class DataTable:
    """An immutable-by-convention table of flat row dictionaries."""

    def __init__(
        self,
        rows: Iterable[Mapping[str, object]],
        columns: Optional[Sequence[str]] = None,
    ) -> None:
        self.rows: List[Row] = [dict(row) for row in rows]
        if columns is None:
            seen: Dict[str, None] = {}
            for row in self.rows:
                for key in row:
                    seen.setdefault(key, None)
            columns = list(seen)
        self.columns: List[str] = list(columns)

    @classmethod
    def from_records(
        cls, records: Iterable[Mapping[str, object]]
    ) -> "DataTable":
        """Build a table from possibly-nested records (telemetry JSONL).

        Nested dicts and lists flatten into ``parent.child`` columns via
        :func:`repro.obs.exporters.flatten_record` — the same rule the
        CSV exporter applies — so ``--json`` output loads straight into
        a table with the column names the CSV would have had.
        """
        from repro.obs.exporters import flatten_record

        return cls([flatten_record(dict(record)) for record in records])

    # -- introspection -------------------------------------------------------

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def __bool__(self) -> bool:
        return bool(self.rows)

    def column(self, name: str) -> List[object]:
        """All values of one column, row order preserved."""
        return [row.get(name) for row in self.rows]

    def unique(self, name: str) -> List[object]:
        """Distinct values of one column, in deterministic sorted order."""
        return sorted(set(self.column(name)), key=_sort_token)

    # -- relational verbs ----------------------------------------------------

    def where(
        self,
        predicate: Optional[Callable[[Row], bool]] = None,
        **equals: object,
    ) -> "DataTable":
        """Rows matching *predicate* and every ``column=value`` filter."""
        kept = []
        for row in self.rows:
            if predicate is not None and not predicate(row):
                continue
            if any(row.get(k) != v for k, v in equals.items()):
                continue
            kept.append(row)
        return DataTable(kept, columns=self.columns)

    def select(self, *columns: str) -> "DataTable":
        """A narrower table with just *columns*, in the given order."""
        return DataTable(
            [{c: row.get(c) for c in columns} for row in self.rows],
            columns=list(columns),
        )

    def with_column(
        self, name: str, fn: Callable[[Row], object]
    ) -> "DataTable":
        """A new table with ``row[name] = fn(row)`` appended to each row."""
        rows = [{**row, name: fn(row)} for row in self.rows]
        columns = self.columns + ([name] if name not in self.columns else [])
        return DataTable(rows, columns=columns)

    def sort_by(self, *columns: str, reverse: bool = False) -> "DataTable":
        """Rows ordered by *columns* (None first; mixed types total-ordered)."""
        rows = sorted(
            self.rows,
            key=lambda row: tuple(_sort_token(row.get(c)) for c in columns),
            reverse=reverse,
        )
        return DataTable(rows, columns=self.columns)

    def group_by(
        self, *columns: str
    ) -> List[Tuple[Tuple[object, ...], "DataTable"]]:
        """Rows partitioned by *columns*, groups in sorted key order."""
        groups: Dict[Tuple[object, ...], List[Row]] = {}
        for row in self.rows:
            key = tuple(row.get(c) for c in columns)
            groups.setdefault(key, []).append(row)
        ordered = sorted(
            groups.items(),
            key=lambda item: tuple(_sort_token(v) for v in item[0]),
        )
        return [
            (key, DataTable(rows, columns=self.columns))
            for key, rows in ordered
        ]

    def aggregate(
        self,
        by: Sequence[str],
        aggs: Mapping[str, Tuple[str, Aggregation]],
    ) -> "DataTable":
        """Group by *by* and fold columns: ``{out: (column, aggregation)}``.

        The aggregation is a builtin name (``count``/``sum``/``min``/
        ``max``/``mean``/``first``/``last``) or any callable over the
        group's values; ``None`` values are dropped before folding
        (``mean`` over an all-``None`` group yields ``None``).
        """
        out_rows: List[Row] = []
        for key, group in self.group_by(*by):
            row: Row = dict(zip(by, key))
            for out, (column, how) in aggs.items():
                fn = _AGGREGATIONS[how] if isinstance(how, str) else how
                values = [v for v in group.column(column) if v is not None]
                row[out] = fn(values) if values else None
            out_rows.append(row)
        return DataTable(out_rows, columns=list(by) + list(aggs))

    def pivot(
        self,
        index: str,
        column: str,
        value: str,
        how: Aggregation = "mean",
    ) -> "DataTable":
        """A wide table: one row per *index*, one column per *column* value."""
        wide = self.aggregate((index, column), {value: (value, how)})
        headers = [format_cell(v) for v in wide.unique(column)]
        rows: Dict[object, Row] = {}
        for row in wide.rows:
            cell = rows.setdefault(row[index], {index: row[index]})
            cell[format_cell(row[column])] = row[value]
        ordered = sorted(rows, key=_sort_token)
        return DataTable(
            [rows[key] for key in ordered], columns=[index] + headers
        )

    # -- emitters ------------------------------------------------------------

    def _rendered(self, float_digits: int) -> List[List[str]]:
        return [
            [format_cell(row.get(c), float_digits) for c in self.columns]
            for row in self.rows
        ]

    def to_markdown(self, float_digits: int = 4) -> str:
        """GitHub-flavoured markdown table."""
        lines = [
            "| " + " | ".join(self.columns) + " |",
            "|" + "|".join("---" for _ in self.columns) + "|",
        ]
        for cells in self._rendered(float_digits):
            lines.append("| " + " | ".join(cells) + " |")
        return "\n".join(lines)

    def to_csv(self, float_digits: int = 4) -> str:
        """CSV text (RFC-style quoting via the stdlib writer)."""
        import csv

        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(self.columns)
        for cells in self._rendered(float_digits):
            writer.writerow(cells)
        return buffer.getvalue()

    def to_latex(
        self,
        float_digits: int = 4,
        caption: Optional[str] = None,
        label: Optional[str] = None,
    ) -> str:
        """A booktabs-style LaTeX tabular (slp's table emitter shape)."""

        def escape(text: str) -> str:
            for char in "&%#_":
                text = text.replace(char, "\\" + char)
            return text

        lines = ["\\begin{table}", "\\centering"]
        lines.append(
            "\\begin{tabular}{" + "l" * len(self.columns) + "}"
        )
        lines.append("\\toprule")
        lines.append(
            " & ".join(escape(c) for c in self.columns) + " \\\\"
        )
        lines.append("\\midrule")
        for cells in self._rendered(float_digits):
            lines.append(" & ".join(escape(c) for c in cells) + " \\\\")
        lines.append("\\bottomrule")
        lines.append("\\end{tabular}")
        if caption:
            lines.append(f"\\caption{{{escape(caption)}}}")
        if label:
            lines.append(f"\\label{{{label}}}")
        lines.append("\\end{table}")
        return "\n".join(lines)

    def to_text(self, title: Optional[str] = None, float_digits: int = 4) -> str:
        """Fixed-width plain text, matching the repo's classic tables."""
        materialized = [list(self.columns)] + self._rendered(float_digits)
        widths = [
            max(len(row[col]) for row in materialized)
            for col in range(len(self.columns))
        ]
        lines = [title] if title else []
        for index, row in enumerate(materialized):
            lines.append(
                "  ".join(
                    cell.rjust(width) for cell, width in zip(row, widths)
                )
            )
            if index == 0:
                lines.append("  ".join("-" * width for width in widths))
        return "\n".join(lines)
