"""Analysis: the paper's model, traces, false sharing, optimal placement."""

from repro.analysis import model, paper
from repro.analysis.bus import BusReport, analyze_bus
from repro.analysis.diagrams import figure1, figure2, wiring_report
from repro.analysis.layout_advisor import (
    Advice,
    AdviceKind,
    LayoutReport,
    advise,
)
from repro.analysis.false_sharing import (
    FalseSharingReport,
    PageClass,
    PageReport,
    analyze,
    classify_pages,
)
from repro.analysis.model import (
    ModelParameters,
    gamma,
    predict_t_global,
    predict_t_numa,
    solve,
    solve_alpha,
    solve_beta,
)
from repro.analysis.optimal import (
    OptimalComparison,
    compare_to_optimal,
    compress_events,
    optimal_page_cost,
)
from repro.analysis.speedup import (
    SpeedupCurve,
    SpeedupPoint,
    elapsed_us,
    speedup_curve,
)
from repro.analysis.report import (
    Evaluation,
    EvaluationRow,
    format_measured_alpha,
    format_table3,
    format_table4,
    run_evaluation,
)
from repro.analysis.tracing import (
    FaultEvent,
    PageTraceSummary,
    RefEvent,
    TraceCollector,
)

__all__ = [
    "model",
    "paper",
    "BusReport",
    "analyze_bus",
    "figure1",
    "figure2",
    "wiring_report",
    "FalseSharingReport",
    "PageClass",
    "PageReport",
    "analyze",
    "classify_pages",
    "Advice",
    "AdviceKind",
    "LayoutReport",
    "advise",
    "SpeedupCurve",
    "SpeedupPoint",
    "elapsed_us",
    "speedup_curve",
    "ModelParameters",
    "gamma",
    "predict_t_global",
    "predict_t_numa",
    "solve",
    "solve_alpha",
    "solve_beta",
    "OptimalComparison",
    "compare_to_optimal",
    "compress_events",
    "optimal_page_cost",
    "Evaluation",
    "EvaluationRow",
    "format_measured_alpha",
    "format_table3",
    "format_table4",
    "run_evaluation",
    "FaultEvent",
    "PageTraceSummary",
    "RefEvent",
    "TraceCollector",
]
