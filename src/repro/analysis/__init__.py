"""Analysis: the paper's model, traces, reports from the result cache.

Alongside the classic model/trace analytics, this package hosts the
cache-backed reporting layer: :mod:`repro.analysis.frames` (the
dependency-free :class:`~repro.analysis.frames.DataTable`),
:mod:`repro.analysis.cachereport` (derived metrics over
``.repro-cache/``) and :mod:`repro.analysis.versus` (ASCII versus
plots), feeding ``repro-numa report --from-cache``.
"""

from repro.analysis import model, paper
from repro.analysis.cachereport import (
    CacheDataset,
    EvaluationJoin,
    derive_row,
    evaluation_from_dataset,
)
from repro.analysis.frames import DataTable, format_cell
from repro.analysis.versus import VersusSeries, versus_from_table, versus_plot
from repro.analysis.bus import BusReport, analyze_bus
from repro.analysis.diagrams import figure1, figure2, wiring_report
from repro.analysis.layout_advisor import (
    Advice,
    AdviceKind,
    LayoutReport,
    advise,
)
from repro.analysis.false_sharing import (
    FalseSharingReport,
    PageClass,
    PageReport,
    analyze,
    classify_pages,
)
from repro.analysis.model import (
    ModelParameters,
    gamma,
    predict_t_global,
    predict_t_numa,
    solve,
    solve_alpha,
    solve_beta,
)
from repro.analysis.optimal import (
    OptimalComparison,
    compare_to_optimal,
    compress_events,
    optimal_page_cost,
)
from repro.analysis.speedup import (
    SpeedupCurve,
    SpeedupPoint,
    elapsed_us,
    speedup_curve,
)
from repro.analysis.report import (
    Evaluation,
    EvaluationRow,
    format_measured_alpha,
    format_table3,
    format_table4,
    run_evaluation,
)
from repro.analysis.tracing import (
    FaultEvent,
    PageTraceSummary,
    RefEvent,
    TraceCollector,
)

__all__ = [
    "model",
    "paper",
    "CacheDataset",
    "EvaluationJoin",
    "derive_row",
    "evaluation_from_dataset",
    "DataTable",
    "format_cell",
    "VersusSeries",
    "versus_from_table",
    "versus_plot",
    "BusReport",
    "analyze_bus",
    "figure1",
    "figure2",
    "wiring_report",
    "FalseSharingReport",
    "PageClass",
    "PageReport",
    "analyze",
    "classify_pages",
    "Advice",
    "AdviceKind",
    "LayoutReport",
    "advise",
    "SpeedupCurve",
    "SpeedupPoint",
    "elapsed_us",
    "speedup_curve",
    "ModelParameters",
    "gamma",
    "predict_t_global",
    "predict_t_numa",
    "solve",
    "solve_alpha",
    "solve_beta",
    "OptimalComparison",
    "compare_to_optimal",
    "compress_events",
    "optimal_page_cost",
    "Evaluation",
    "EvaluationRow",
    "format_measured_alpha",
    "format_table3",
    "format_table4",
    "run_evaluation",
    "FaultEvent",
    "PageTraceSummary",
    "RefEvent",
    "TraceCollector",
]
