"""One-shot reproduction report: every table, figure and check, as text.

``repro-numa report`` (or :func:`generate_report`) runs the whole
evaluation — Tables 1-4, Figures 1-2, the latency check, the measured-α
cross-check and a Section 4.2 false-sharing summary — and assembles a
single markdown document, so a reader can regenerate the paper's
artifacts with one command and diff the result against EXPERIMENTS.md.
"""

from __future__ import annotations

import pathlib
from typing import Callable, Dict, Optional, Union

from repro import __version__
from repro.analysis.diagrams import figure1, figure2, wiring_report
from repro.analysis.paper import ACE_RATIOS
from repro.analysis.report import (
    Evaluation,
    format_measured_alpha,
    format_table3,
    format_table4,
    run_evaluation,
)
from repro.core.transitions import READ_TABLE, WRITE_TABLE
from repro.machine.config import TimingParameters, ace_config
from repro.workloads.base import Workload


def _render_transition_table(table, title: str) -> str:
    lines = [title, "```"]
    for (decision, state), spec in table.items():
        cleanup, copy, new_state = spec.describe()
        lines.append(
            f"{decision.name:6s} x {state.value:28s} -> "
            f"{cleanup:16s} | {copy:13s} | {new_state}"
        )
    lines.append("```")
    return "\n".join(lines)


def generate_report(
    workloads: Optional[Dict[str, Callable[[], Workload]]] = None,
    n_processors: int = 7,
    threshold: int = 4,
    evaluation: Optional[Evaluation] = None,
) -> str:
    """Build the full reproduction report as a markdown string.

    Pass a precomputed *evaluation* to skip re-running the applications
    (the CLI reuses one evaluation for Tables 3 and 4).
    """
    if evaluation is None:
        evaluation = run_evaluation(
            workloads, n_processors=n_processors, threshold=threshold
        )
    timing = TimingParameters()
    sections = [
        "# Reproduction report",
        "",
        f"repro {__version__} — Bolosky, Fitzgerald & Scott, "
        '"Simple But Effective Techniques for NUMA Memory Management" '
        "(SOSP '89)",
        "",
        f"Machine: {n_processors} simulated processors, move threshold "
        f"{threshold}.",
        "",
        "## Section 2.2 — memory latencies",
        "```",
        f"local fetch {timing.local_fetch_us} us / store "
        f"{timing.local_store_us} us; global fetch "
        f"{timing.global_fetch_us} us / store {timing.global_store_us} us",
        f"G/L fetch {timing.fetch_ratio:.2f} (paper {ACE_RATIOS['fetch']}), "
        f"store {timing.store_ratio:.2f} (paper {ACE_RATIOS['store']}), "
        f"45%-store mix {timing.mix_ratio(0.45):.2f} "
        f"(paper {ACE_RATIOS['mix_45pct_stores']})",
        "```",
        "",
        "## Tables 1-2 — protocol actions (from the live transition rules)",
        _render_transition_table(
            READ_TABLE, "### Table 1 — read requests"
        ),
        "",
        _render_transition_table(
            WRITE_TABLE, "### Table 2 — write requests"
        ),
        "",
        "## Table 3 — the evaluation",
        "```",
        format_table3(evaluation),
        "```",
        "",
        "## Table 4 — NUMA-management overhead",
        "```",
        format_table4(evaluation),
        "```",
        "",
        "## Measured vs model-recovered alpha",
        "```",
        format_measured_alpha(evaluation),
        "```",
        "",
        "## Figure 1 — ACE memory architecture",
        "```",
        figure1(ace_config(n_processors)),
        "```",
        "",
        "## Figure 2 — the pmap layer",
        "```",
        figure2(),
        "",
        wiring_report(),
        "```",
        "",
    ]
    return "\n".join(sections)


def write_report(
    path: Union[str, pathlib.Path],
    workloads: Optional[Dict[str, Callable[[], Workload]]] = None,
    n_processors: int = 7,
    threshold: int = 4,
) -> pathlib.Path:
    """Generate the report and write it to *path*."""
    path = pathlib.Path(path)
    path.write_text(
        generate_report(
            workloads, n_processors=n_processors, threshold=threshold
        )
    )
    return path
