"""One-shot reproduction report: every table, figure and check, as text.

``repro-numa report`` (or :func:`generate_report`) assembles a single
markdown document with the whole evaluation — Tables 1-4, Figures 1-2,
the latency check, the measured-α cross-check — so a reader can
regenerate the paper's artifacts with one command and diff the result
against EXPERIMENTS.md.

Two paths produce that document:

* the classic in-process path (:func:`generate_report` with a
  workloads dict, kept for the library API), which simulates and then
  renders;
* the cache-backed path (:func:`generate_cache_report`), which renders
  purely from a :class:`~repro.analysis.cachereport.CacheDataset` over
  ``.repro-cache/`` — **zero re-execution**, every artifact footnoted
  with the spec fingerprints and cache-schema version it was derived
  from, and byte-identical output for an identical cache.  This is the
  path behind ``repro-numa report --from-cache``.
"""

from __future__ import annotations

import hashlib
import pathlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro import __version__
from repro.analysis.cachereport import (
    CacheDataset,
    EvaluationJoin,
    chaos_fan_section,
    evaluation_from_dataset,
    footnote,
    missing_lines,
    policy_tournament_section,
    summary_section,
    table3_frame,
    table4_frame,
    threshold_versus_section,
)
from repro.analysis.diagrams import figure1, figure2, wiring_report
from repro.analysis.paper import ACE_RATIOS
from repro.analysis.report import (
    Evaluation,
    format_measured_alpha,
    format_table3,
    format_table4,
    run_evaluation,
)
from repro.core.transitions import READ_TABLE, WRITE_TABLE
from repro.exp.cache import CACHE_SCHEMA
from repro.exp.spec import SPEC_SCHEMA
from repro.machine.config import TimingParameters, ace_config
from repro.workloads.base import Workload


def _render_transition_table(table, title: str) -> str:
    lines = [title, "```"]
    for (decision, state), spec in table.items():
        cleanup, copy, new_state = spec.describe()
        lines.append(
            f"{decision.name:6s} x {state.value:28s} -> "
            f"{cleanup:16s} | {copy:13s} | {new_state}"
        )
    lines.append("```")
    return "\n".join(lines)


def _header_sections(n_processors: int, threshold: int) -> List[str]:
    """The static preamble shared by both report paths."""
    timing = TimingParameters()
    return [
        "# Reproduction report",
        "",
        f"repro {__version__} — Bolosky, Fitzgerald & Scott, "
        '"Simple But Effective Techniques for NUMA Memory Management" '
        "(SOSP '89)",
        "",
        f"Machine: {n_processors} simulated processors, move threshold "
        f"{threshold}.",
        "",
        "## Section 2.2 — memory latencies",
        "```",
        f"local fetch {timing.local_fetch_us} us / store "
        f"{timing.local_store_us} us; global fetch "
        f"{timing.global_fetch_us} us / store {timing.global_store_us} us",
        f"G/L fetch {timing.fetch_ratio:.2f} (paper {ACE_RATIOS['fetch']}), "
        f"store {timing.store_ratio:.2f} (paper {ACE_RATIOS['store']}), "
        f"45%-store mix {timing.mix_ratio(0.45):.2f} "
        f"(paper {ACE_RATIOS['mix_45pct_stores']})",
        "```",
        "",
        "## Tables 1-2 — protocol actions (from the live transition rules)",
        _render_transition_table(READ_TABLE, "### Table 1 — read requests"),
        "",
        _render_transition_table(WRITE_TABLE, "### Table 2 — write requests"),
        "",
    ]


def _figure_sections(n_processors: int) -> List[str]:
    return [
        "## Figure 1 — ACE memory architecture",
        "```",
        figure1(ace_config(n_processors)),
        "```",
        "",
        "## Figure 2 — the pmap layer",
        "```",
        figure2(),
        "",
        wiring_report(),
        "```",
        "",
    ]


def generate_report(
    workloads: Optional[Dict[str, Callable[[], Workload]]] = None,
    n_processors: int = 7,
    threshold: int = 4,
    evaluation: Optional[Evaluation] = None,
) -> str:
    """Build the full reproduction report as a markdown string.

    Pass a precomputed *evaluation* to skip re-running the applications
    (the CLI reuses one evaluation for Tables 3 and 4).
    """
    if evaluation is None:
        evaluation = run_evaluation(
            workloads, n_processors=n_processors, threshold=threshold
        )
    sections = _header_sections(n_processors, threshold)
    sections += [
        "## Table 3 — the evaluation",
        "```",
        format_table3(evaluation),
        "```",
        "",
        "## Table 4 — NUMA-management overhead",
        "```",
        format_table4(evaluation),
        "```",
        "",
        "## Measured vs model-recovered alpha",
        "```",
        format_measured_alpha(evaluation),
        "```",
        "",
    ]
    sections += _figure_sections(n_processors)
    return "\n".join(sections)


def write_report(
    path: Union[str, pathlib.Path],
    workloads: Optional[Dict[str, Callable[[], Workload]]] = None,
    n_processors: int = 7,
    threshold: int = 4,
) -> pathlib.Path:
    """Generate the report and write it to *path*."""
    path = pathlib.Path(path)
    path.write_text(
        generate_report(
            workloads, n_processors=n_processors, threshold=threshold
        )
    )
    return path


# -- the cache-backed path ---------------------------------------------------


@dataclass
class ReportArtifact:
    """One generated artifact and the cached specs it was derived from."""

    name: str
    #: Full contributing fingerprints, sorted and deduplicated.
    fingerprints: List[str]

    def as_record(self) -> Dict[str, object]:
        """The ``--json`` manifest record for this artifact."""
        return {
            "t": "report_artifact",
            "name": self.name,
            "specs": len(self.fingerprints),
            "fingerprints": self.fingerprints,
        }


@dataclass
class CacheReportBundle:
    """Everything one cache-backed report generation produced."""

    document: str
    artifacts: List[ReportArtifact]
    join: EvaluationJoin
    #: Valid entries / skipped files in the scanned cache.
    cache_entries: int
    cache_skipped: Dict[str, int]
    #: Specs simulated by this invocation (0 unless ``--fill`` ran).
    executed: int = 0

    @property
    def sha256(self) -> str:
        """Content hash of the document (the byte-identity witness)."""
        return hashlib.sha256(self.document.encode("utf-8")).hexdigest()

    def manifest_records(self) -> List[Dict[str, object]]:
        """The ``--json`` contract: summary first, then per-artifact rows."""
        records: List[Dict[str, object]] = [
            {
                "t": "report_summary",
                "cache_schema": CACHE_SCHEMA,
                "spec_schema": SPEC_SCHEMA,
                "cache_entries": self.cache_entries,
                "cache_skipped": dict(sorted(self.cache_skipped.items())),
                "required": self.join.required,
                "cached": len(self.join.fingerprints),
                "missing": len(self.join.missing),
                "cache_ratio": round(self.join.cache_ratio, 4),
                "executed": self.executed,
                "sha256": self.sha256,
            }
        ]
        records.extend(artifact.as_record() for artifact in self.artifacts)
        records.extend(
            {
                "t": "report_missing_spec",
                "fingerprint": spec.fingerprint(),
                "label": spec.label,
            }
            for spec in self.join.missing
        )
        return records


def generate_cache_report(
    dataset: CacheDataset,
    apps: Optional[Sequence[str]] = None,
    n_processors: int = 7,
    threshold: int = 4,
    quick: bool = False,
    executed: int = 0,
) -> CacheReportBundle:
    """Regenerate every table and figure purely from cached outcomes.

    Nothing simulates here: the α/β/γ fits come from
    :func:`~repro.analysis.cachereport.evaluation_from_dataset`, the
    sweep studies from the derived-metric table, and each artifact
    carries a footnote naming its contributing spec fingerprints and
    the cache schema — identical cache in, byte-identical document out.
    """
    join = evaluation_from_dataset(
        dataset,
        apps=apps,
        n_processors=n_processors,
        threshold=threshold,
        quick=quick,
    )
    evaluation = join.evaluation
    artifacts: List[ReportArtifact] = []
    sections = _header_sections(n_processors, threshold)

    def add(name: str, title: str, body: str, fps: Sequence[str]) -> None:
        fingerprints = sorted(set(str(fp) for fp in fps))
        artifacts.append(
            ReportArtifact(name=name, fingerprints=fingerprints)
        )
        sections.extend([title, body, ""])
        if fingerprints:
            sections.extend([footnote(fingerprints), ""])
        else:
            sections.extend(["> derived from 0 cached spec(s)", ""])

    eval_fps = join.fingerprints
    if evaluation.rows:
        add(
            "table3",
            "## Table 3 — the evaluation (from cache)",
            "```\n" + format_table3(evaluation) + "\n```",
            eval_fps,
        )
        add(
            "table4",
            "## Table 4 — NUMA-management overhead (from cache)",
            "```\n" + format_table4(evaluation) + "\n```",
            eval_fps,
        )
        add(
            "alpha",
            "## Measured vs model-recovered alpha (from cache)",
            "```\n" + format_measured_alpha(evaluation) + "\n```",
            eval_fps,
        )
    else:
        add(
            "table3",
            "## Table 3 — the evaluation (from cache)",
            "(no complete Tnuma/Tglobal/Tlocal triple in the cache; "
            "run `repro-numa batch --grid table3` or pass `--fill`)",
            [],
        )

    title, body, fps = threshold_versus_section(
        dataset, n_processors=n_processors, quick=quick
    )
    add("versus-threshold", f"## {title}", body, fps)

    title, body, fps = policy_tournament_section(
        dataset,
        apps=apps,
        n_processors=n_processors,
        threshold=threshold,
        quick=quick,
    )
    add("policy-tournament", f"## {title}", body, fps)

    title, body, fps = chaos_fan_section(dataset)
    add("chaos-fans", f"## {title}", body, fps)

    title, body, fps = summary_section(dataset)
    add("cache-summary", f"## {title}", body, fps)

    sections += _figure_sections(n_processors)

    skipped = dataset.scan.skipped_by_reason()
    skip_detail = ", ".join(
        f"{reason}: {count}" for reason, count in sorted(skipped.items())
    )
    sections += [
        "## Provenance",
        "```",
        f"spec schema   {SPEC_SCHEMA}",
        f"cache schema  {CACHE_SCHEMA}",
        f"cache entries {len(dataset)} valid, "
        f"{sum(skipped.values())} skipped"
        + (f" ({skip_detail})" if skip_detail else ""),
        f"required      {join.required} specs, "
        f"{len(join.fingerprints)} served from cache, "
        f"{len(join.missing)} missing, {executed} executed",
        "```",
        "",
    ]
    if join.missing:
        sections += [
            "### Missing specs",
            "```",
            *missing_lines(join.missing),
            "```",
            "",
        ]

    return CacheReportBundle(
        document="\n".join(sections),
        artifacts=artifacts,
        join=join,
        cache_entries=len(dataset),
        cache_skipped=skipped,
        executed=executed,
    )


def emit_tables(
    evaluation: Evaluation,
    directory: Union[str, pathlib.Path],
    formats: Sequence[str] = ("csv", "latex"),
) -> List[pathlib.Path]:
    """Write Table 3/4 data files (CSV and/or LaTeX) next to the report.

    Returns the written paths; used by ``repro-numa report --tables``
    and the committed ``benchmarks/_artifacts`` bundle.
    """
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    frames = {
        "table3": table3_frame(evaluation),
        "table4": table4_frame(evaluation),
    }
    suffixes = {"csv": ".csv", "latex": ".tex", "markdown": ".md"}
    written: List[pathlib.Path] = []
    for name, frame in frames.items():
        for fmt in formats:
            if fmt not in suffixes:
                from repro.errors import ConfigurationError

                raise ConfigurationError(
                    f"unknown table format {fmt!r}; "
                    f"choose from {', '.join(sorted(suffixes))}"
                )
            path = directory / f"{name}{suffixes[fmt]}"
            if fmt == "csv":
                path.write_text(frame.to_csv())
            elif fmt == "latex":
                path.write_text(
                    frame.to_latex(
                        caption=f"Regenerated {name} (from cache)",
                        label=f"tab:{name}",
                    )
                    + "\n"
                )
            else:
                path.write_text(frame.to_markdown() + "\n")
            written.append(path)
    return written
