"""Evaluation driver and table renderers for the paper's Tables 3 and 4.

:func:`run_evaluation` performs the paper's three-run methodology for a
set of applications; the ``format_*`` functions print the same rows the
paper reports, with the published numbers alongside for comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.analysis import model as eqs
from repro.analysis.paper import TABLE_3, TABLE_4
from repro.sim.harness import PlacementMeasurement, measure_placement
from repro.workloads import TABLE_4_WORKLOADS
from repro.workloads.base import Workload


@dataclass(frozen=True)
class EvaluationRow:
    """One application's measurements and derived model parameters."""

    application: str
    measurement: PlacementMeasurement
    params: eqs.ModelParameters

    @property
    def delta_s(self) -> Optional[float]:
        """ΔS = Snuma − Sglobal, or ``None`` when negative (paper's na)."""
        delta = (
            self.measurement.numa.system_time_s
            - self.measurement.all_global.system_time_s
        )
        return delta if delta > 0 else None

    @property
    def delta_over_t(self) -> float:
        """ΔS / Tnuma (0 when ΔS is na, matching Table 4)."""
        delta = self.delta_s
        if delta is None:
            return 0.0
        return delta / self.measurement.t_numa_s


@dataclass(frozen=True)
class Evaluation:
    """The full application-mix evaluation (inputs to Tables 3 and 4)."""

    rows: List[EvaluationRow]
    n_processors: int
    threshold: int

    def row(self, application: str) -> EvaluationRow:
        """The row for one application."""
        for row in self.rows:
            if row.application == application:
                return row
        raise KeyError(application)


def _row_from_measurement(
    name: str, measurement: PlacementMeasurement
) -> EvaluationRow:
    """Solve the model for one application's three measured runs."""
    params = eqs.solve(
        measurement.t_global_s,
        measurement.t_numa_s,
        measurement.t_local_s,
        measurement.g_over_l,
    )
    return EvaluationRow(
        application=name, measurement=measurement, params=params
    )


def run_evaluation(
    workloads: Optional[Dict[str, Callable[[], Workload]]] = None,
    n_processors: int = 7,
    threshold: int = 4,
    check_invariants: bool = False,
    *,
    apps: Optional[Sequence[str]] = None,
    quick: bool = False,
    jobs: int = 1,
    cache=None,
    registry=None,
    bus=None,
    progress=None,
) -> Evaluation:
    """Measure Tnuma/Tglobal/Tlocal and solve the model for each app.

    Invariant checking is off by default here purely for speed; the test
    suite runs the same workloads with it on.

    With ``workloads=None`` (the CLI's path) the evaluation is expressed
    as a declarative :func:`~repro.exp.grid.table3_grid` and executed by
    the batch orchestrator, which unlocks ``jobs`` worker processes, the
    on-disk result ``cache``, and ``batch_*`` telemetry
    (``registry``/``bus``/``progress`` pass straight through to
    :func:`~repro.exp.batch.run_batch`).  ``apps`` restricts the grid
    and ``quick`` selects the scaled-down workload instances.  Passing
    an explicit ``workloads`` dict (custom factories the registries
    cannot rebuild) keeps the classic in-process loop; the two paths
    produce identical measurements because both execute the exact
    :func:`~repro.exp.grid.placement_specs` triple.
    """
    if workloads is None:
        from repro.exp.batch import run_batch
        from repro.exp.grid import flatten, table3_grid

        groups = table3_grid(
            apps=apps,
            n_processors=n_processors,
            threshold=threshold,
            quick=quick,
            check_invariants=check_invariants,
        )
        batch = run_batch(
            flatten(groups),
            jobs=jobs,
            cache=cache,
            registry=registry,
            bus=bus,
            progress=progress,
        )
        rows = []
        for index, group in enumerate(groups):
            tnuma, tglobal, tlocal = (
                row.outcome.result
                for row in batch.rows[3 * index: 3 * index + 3]
            )
            measurement = PlacementMeasurement(
                workload=group.application,
                g_over_l=group.tnuma.resolve_workload().g_over_l,
                numa=tnuma,
                all_global=tglobal,
                local=tlocal,
            )
            rows.append(_row_from_measurement(group.application, measurement))
        return Evaluation(
            rows=rows, n_processors=n_processors, threshold=threshold
        )

    rows = []
    for name, factory in workloads.items():
        measurement = measure_placement(
            factory(),
            n_processors=n_processors,
            threshold=threshold,
            check_invariants=check_invariants,
        )
        rows.append(_row_from_measurement(name, measurement))
    return Evaluation(rows=rows, n_processors=n_processors, threshold=threshold)


def _format_table(
    headers: Sequence[str], rows: Iterable[Sequence[str]], title: str
) -> str:
    """Plain-text table with a title, sized to its contents."""
    materialized = [list(headers)] + [list(r) for r in rows]
    widths = [
        max(len(row[col]) for row in materialized)
        for col in range(len(headers))
    ]
    lines = [title]
    for index, row in enumerate(materialized):
        lines.append(
            "  ".join(cell.rjust(width) for cell, width in zip(row, widths))
        )
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def _fmt(value: Optional[float], digits: int = 2) -> str:
    if value is None:
        return "na"
    return f"{value:.{digits}f}"


def format_table3(evaluation: Evaluation, include_paper: bool = True) -> str:
    """Render Table 3: measured times and computed model parameters."""
    headers = ["Application", "Tglobal", "Tnuma", "Tlocal", "α", "β", "γ"]
    if include_paper:
        headers += ["α(paper)", "β(paper)", "γ(paper)"]
    rows = []
    for row in evaluation.rows:
        m = row.measurement
        cells = [
            row.application,
            f"{m.t_global_s:.1f}",
            f"{m.t_numa_s:.1f}",
            f"{m.t_local_s:.1f}",
            row.params.format_alpha(),
            _fmt(row.params.beta),
            _fmt(row.params.gamma),
        ]
        if include_paper:
            paper = TABLE_3.get(row.application.split("-")[0])
            if paper is None:
                cells += ["-", "-", "-"]
            else:
                cells += [
                    _fmt(paper.alpha),
                    _fmt(paper.beta),
                    _fmt(paper.gamma),
                ]
        rows.append(cells)
    return _format_table(
        headers,
        rows,
        "Table 3: measured user times (simulated seconds) and model "
        f"parameters ({evaluation.n_processors} processors, threshold "
        f"{evaluation.threshold})",
    )


def format_table4(evaluation: Evaluation, include_paper: bool = True) -> str:
    """Render Table 4: system-time overhead of NUMA management."""
    headers = ["Application", "Snuma", "Sglobal", "ΔS", "Tnuma", "ΔS/Tnuma"]
    if include_paper:
        headers += ["ΔS/Tnuma(paper)"]
    rows = []
    for row in evaluation.rows:
        if row.application not in TABLE_4_WORKLOADS:
            continue
        m = row.measurement
        cells = [
            row.application,
            f"{m.numa.system_time_s:.2f}",
            f"{m.all_global.system_time_s:.2f}",
            _fmt(row.delta_s, 2),
            f"{m.t_numa_s:.1f}",
            f"{row.delta_over_t * 100:.1f}%",
        ]
        if include_paper:
            paper = TABLE_4.get(row.application)
            cells += [
                f"{paper.delta_over_t * 100:.1f}%" if paper else "-"
            ]
        rows.append(cells)
    return _format_table(
        headers,
        rows,
        "Table 4: total system time (simulated seconds) on "
        f"{evaluation.n_processors} processors",
    )


def format_measured_alpha(evaluation: Evaluation) -> str:
    """Extra table the paper could not print: ground-truth α per app.

    The simulator observes every reference, so the model-recovered α of
    Table 3 can be validated against the directly measured fraction of
    local writable-data references.
    """
    headers = ["Application", "α(model)", "α(measured)", "moves", "pinned-ish"]
    rows = []
    for row in evaluation.rows:
        m = row.measurement.numa
        rows.append(
            [
                row.application,
                row.params.format_alpha(),
                "na" if m.measured_alpha is None else f"{m.measured_alpha:.2f}",
                str(m.stats.moves),
                str(m.stats.local_memory_fallbacks),
            ]
        )
    return _format_table(
        headers, rows, "Model-recovered vs directly measured α"
    )
