"""Automatic layout advice: the language-processor role of Section 4.2.

"We expect that language processor level solutions to the false sharing
problem can significantly reduce the amount of intervention necessary by
the application programmer", and Section 5's first future-work item is
"what language processors can do to automate its reduction".  This module
is that tool, built on reference traces: it looks at how every writable
page was *actually* used and emits the same three kinds of advice the
authors applied by hand:

* **SEGREGATE** — a writably-shared page dominated by one processor's
  traffic: pad the dominant processor's objects onto their own page
  (the paper "forced separation by adding page-sized padding around
  objects").
* **PRIVATIZE** — a page that is read far more than written, by many
  readers: give each thread a private copy of the read-mostly data
  (the paper's Primes2 divisor-vector fix, α 0.66 → 1.00).
* **MARK_NONCACHEABLE** — a genuinely, heavily writably-shared page:
  placement cannot help, but a Section 4.3 pragma skips the pre-pin
  copying (the Primes3 sieve).

Each piece of advice carries an estimated saving: the references that
would move from global to local speed if the advice were followed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.tracing import TraceCollector
from repro.machine.config import TimingParameters
from repro.vm.address_space import AddressSpace


class AdviceKind(enum.Enum):
    """What the advisor recommends for a page."""

    SEGREGATE = "segregate"
    PRIVATIZE = "privatize"
    MARK_NONCACHEABLE = "mark-noncacheable"


@dataclass(frozen=True)
class Advice:
    """One recommendation, tied to a page and (when known) its object."""

    kind: AdviceKind
    vpage: int
    object_name: Optional[str]
    total_refs: int
    #: Estimated µs saved per run if the advice is applied.
    estimated_saving_us: float
    rationale: str


@dataclass(frozen=True)
class LayoutReport:
    """All advice for a run, ranked by estimated saving."""

    advice: List[Advice]

    def top(self, n: int = 5) -> List[Advice]:
        """The n most valuable recommendations."""
        return self.advice[:n]

    def total_estimated_saving_us(self) -> float:
        """Sum of all estimated savings."""
        return sum(a.estimated_saving_us for a in self.advice)

    def by_kind(self, kind: AdviceKind) -> List[Advice]:
        """Recommendations of one kind."""
        return [a for a in self.advice if a.kind is kind]


def advise(
    trace: TraceCollector,
    space: Optional[AddressSpace] = None,
    timing: Optional[TimingParameters] = None,
    dominance_threshold: float = 0.75,
    read_mostly_threshold: float = 0.98,
    min_refs: int = 64,
) -> LayoutReport:
    """Analyze a trace and emit layout advice.

    *space* (optional) resolves pages to object names for readable
    output.  Pages with fewer than *min_refs* references are ignored —
    the paper's manual tuning also targeted only the objects that
    mattered.
    """
    if timing is None:
        timing = TimingParameters()
    per_gain = timing.global_fetch_us - timing.local_fetch_us

    per_cpu: Dict[int, Dict[int, int]] = {}
    for event in trace.events:
        if not event.writable_data:
            continue
        counts = per_cpu.setdefault(event.vpage, {})
        counts[event.cpu] = (
            counts.get(event.cpu, 0) + event.reads + event.writes
        )

    advice: List[Advice] = []
    for vpage, summary in trace.page_summaries(writable_only=True).items():
        if not summary.writably_shared:
            continue
        if summary.total_refs < min_refs:
            continue
        counts = per_cpu.get(vpage, {})
        total = sum(counts.values())
        if total == 0:
            continue
        dominant = max(counts.values()) / total
        read_fraction = summary.reads / summary.total_refs
        name = _object_name(space, vpage)
        if dominant >= dominance_threshold:
            saving = max(counts.values()) * per_gain
            advice.append(
                Advice(
                    kind=AdviceKind.SEGREGATE,
                    vpage=vpage,
                    object_name=name,
                    total_refs=summary.total_refs,
                    estimated_saving_us=saving,
                    rationale=(
                        f"one processor makes {dominant:.0%} of the "
                        "references; pad its objects onto a private page"
                    ),
                )
            )
        elif read_fraction >= read_mostly_threshold:
            saving = summary.reads * per_gain
            advice.append(
                Advice(
                    kind=AdviceKind.PRIVATIZE,
                    vpage=vpage,
                    object_name=name,
                    total_refs=summary.total_refs,
                    estimated_saving_us=saving,
                    rationale=(
                        f"{read_fraction:.0%} of references are reads by "
                        f"{len(summary.readers)} processors; copy the data "
                        "into per-thread private vectors"
                    ),
                )
            )
        else:
            # Genuine writable sharing: no placement fixes it, but the
            # pragma avoids the pre-pin copy storm.
            advice.append(
                Advice(
                    kind=AdviceKind.MARK_NONCACHEABLE,
                    vpage=vpage,
                    object_name=name,
                    total_refs=summary.total_refs,
                    estimated_saving_us=0.0,
                    rationale=(
                        f"written by {len(summary.writers)} processors "
                        f"({1 - read_fraction:.0%} stores): place directly "
                        "in global memory to skip placement thrash"
                    ),
                )
            )
    advice.sort(key=lambda a: (-a.estimated_saving_us, a.vpage))
    return LayoutReport(advice=advice)


def _object_name(space: Optional[AddressSpace], vpage: int) -> Optional[str]:
    if space is None:
        return None
    try:
        region, _ = space.resolve(vpage)
    except Exception:  # SegmentationFault: page outside any region
        return None
    return region.vm_object.name
