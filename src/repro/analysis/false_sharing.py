"""False-sharing detection (Section 4.2).

"By definition, an object is writably shared if it is written by at least
one processor and read or written by more than one.  [...] an object that
is not writably shared, but that is on a writably shared page is falsely
shared."

Working from a reference trace, we classify each page and flag the pages
whose sharing looks *false*: the page is writably shared (so the policy
will pin it in global memory), yet one processor accounts for almost all
of its traffic — exactly the signature of a private object colocated with
something another processor occasionally touches.  The paper found these
by "ad hoc examination of the individual applications"; the trace makes
it mechanical.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.tracing import TraceCollector


class PageClass(enum.Enum):
    """Sharing classification of a page, from observed references."""

    UNREFERENCED = "unreferenced"
    PRIVATE = "private"  # one processor only
    READ_SHARED = "read-shared"  # many readers, no writers after init
    WRITABLY_SHARED = "writably-shared"


@dataclass(frozen=True)
class PageReport:
    """Sharing classification plus the false-sharing signal for one page."""

    vpage: int
    page_class: PageClass
    total_refs: int
    n_readers: int
    n_writers: int
    #: Fraction of the page's references made by its busiest processor.
    dominant_share: float
    #: Writably shared, but dominated by one processor's traffic.
    false_sharing_suspect: bool


@dataclass(frozen=True)
class FalseSharingReport:
    """Whole-trace false-sharing summary."""

    pages: List[PageReport]
    #: Share threshold used to flag suspects.
    dominance_threshold: float

    @property
    def suspects(self) -> List[PageReport]:
        """Pages flagged as likely false sharing."""
        return [p for p in self.pages if p.false_sharing_suspect]

    @property
    def writably_shared_pages(self) -> List[PageReport]:
        """All genuinely writably-shared pages."""
        return [
            p for p in self.pages if p.page_class is PageClass.WRITABLY_SHARED
        ]

    def suspect_refs_fraction(self) -> Optional[float]:
        """Share of writable-page traffic on suspect pages.

        This is (a proxy for) the improvement available from the paper's
        padding/privatizing tuning: references that are slow only because
        of page-mates.  ``None`` when the trace has no writable traffic.
        """
        total = sum(p.total_refs for p in self.pages)
        if total == 0:
            return None
        return sum(p.total_refs for p in self.suspects) / total


def classify_pages(
    trace: TraceCollector, writable_only: bool = True
) -> Dict[int, PageReport]:
    """Classify every page in a trace; no dominance flagging."""
    return {
        report.vpage: report
        for report in analyze(trace, writable_only=writable_only).pages
    }


def analyze(
    trace: TraceCollector,
    dominance_threshold: float = 0.75,
    writable_only: bool = True,
) -> FalseSharingReport:
    """Classify pages and flag false-sharing suspects.

    A suspect is a writably-shared page where one processor makes at
    least ``dominance_threshold`` of the references: the dominant
    processor's objects would be local if the minority traffic lived on
    a different page.
    """
    per_cpu: Dict[int, Dict[int, int]] = {}
    summaries = trace.page_summaries(writable_only=writable_only)
    for event in trace.events:
        if writable_only and not event.writable_data:
            continue
        counts = per_cpu.setdefault(event.vpage, {})
        counts[event.cpu] = counts.get(event.cpu, 0) + event.reads + event.writes

    reports: List[PageReport] = []
    for vpage, summary in sorted(summaries.items()):
        counts = per_cpu.get(vpage, {})
        total = sum(counts.values())
        dominant = max(counts.values()) / total if total else 0.0
        users = summary.readers | summary.writers
        if not users:
            page_class = PageClass.UNREFERENCED
        elif len(users) == 1:
            page_class = PageClass.PRIVATE
        elif not summary.writers:
            page_class = PageClass.READ_SHARED
        else:
            page_class = PageClass.WRITABLY_SHARED
        suspect = (
            page_class is PageClass.WRITABLY_SHARED
            and total > 0
            and dominant >= dominance_threshold
        )
        reports.append(
            PageReport(
                vpage=vpage,
                page_class=page_class,
                total_refs=summary.total_refs,
                n_readers=len(summary.readers),
                n_writers=len(summary.writers),
                dominant_share=dominant,
                false_sharing_suspect=suspect,
            )
        )
    return FalseSharingReport(
        pages=reports, dominance_threshold=dominance_threshold
    )
