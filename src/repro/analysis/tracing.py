"""Reference-trace capture (the paper's Section 5 future work).

"We have begun to make and analyze reference traces of parallel programs"
— the simulator can hand them out for free.  :class:`TraceCollector`
plugs into the engine as an observer and records every reference block
and fault; the offline analyses (optimal placement, false sharing) and
the ablation benches consume these traces.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Union

from repro.core.state import AccessKind
from repro.errors import ConfigurationError
from repro.machine.timing import MemoryLocation


@dataclass(frozen=True)
class RefEvent:
    """One block of user references to one page."""

    sequence: int
    round_index: int
    cpu: int
    vpage: int
    page_id: int
    reads: int
    writes: int
    location: MemoryLocation
    writable_data: bool


@dataclass(frozen=True)
class FaultEvent:
    """One page fault."""

    sequence: int
    round_index: int
    cpu: int
    vpage: int
    kind: AccessKind


@dataclass
class PageTraceSummary:
    """Aggregate reference behaviour of one virtual page."""

    vpage: int
    reads: int = 0
    writes: int = 0
    readers: set = field(default_factory=set)
    writers: set = field(default_factory=set)

    @property
    def writably_shared(self) -> bool:
        """The paper's definition: written by ≥1 CPU, used by >1."""
        return len(self.writers) >= 1 and len(self.readers | self.writers) > 1

    @property
    def total_refs(self) -> int:
        """All references to the page."""
        return self.reads + self.writes


class TraceCollector:
    """Engine observer that records the full reference trace."""

    def __init__(self, keep_faults: bool = True) -> None:
        self._events: List[RefEvent] = []
        self._faults: List[FaultEvent] = []
        self._keep_faults = keep_faults
        self._sequence = 0

    # -- EngineObserver interface -------------------------------------------

    def on_reference(
        self,
        round_index: int,
        cpu: int,
        vpage: int,
        page_id: int,
        reads: int,
        writes: int,
        location: MemoryLocation,
        writable_data: bool,
    ) -> None:
        """Record one reference block."""
        self._events.append(
            RefEvent(
                sequence=self._sequence,
                round_index=round_index,
                cpu=cpu,
                vpage=vpage,
                page_id=page_id,
                reads=reads,
                writes=writes,
                location=location,
                writable_data=writable_data,
            )
        )
        self._sequence += 1

    def on_fault(
        self, round_index: int, cpu: int, vpage: int, kind: AccessKind
    ) -> None:
        """Record one fault."""
        if not self._keep_faults:
            return
        self._faults.append(
            FaultEvent(
                sequence=self._sequence,
                round_index=round_index,
                cpu=cpu,
                vpage=vpage,
                kind=kind,
            )
        )
        self._sequence += 1

    # -- consumption ---------------------------------------------------------

    @property
    def events(self) -> List[RefEvent]:
        """All reference blocks, in execution order."""
        return self._events

    @property
    def faults(self) -> List[FaultEvent]:
        """All faults, in execution order."""
        return self._faults

    def events_for_vpage(self, vpage: int) -> Iterator[RefEvent]:
        """Reference blocks touching one virtual page, in order."""
        return (e for e in self._events if e.vpage == vpage)

    def by_vpage(self) -> Dict[int, List[RefEvent]]:
        """Reference blocks grouped by virtual page, order preserved."""
        grouped: Dict[int, List[RefEvent]] = {}
        for event in self._events:
            grouped.setdefault(event.vpage, []).append(event)
        return grouped

    def page_summaries(
        self, writable_only: bool = False
    ) -> Dict[int, PageTraceSummary]:
        """Aggregate per-page reference behaviour."""
        summaries: Dict[int, PageTraceSummary] = {}
        for event in self._events:
            if writable_only and not event.writable_data:
                continue
            summary = summaries.get(event.vpage)
            if summary is None:
                summary = PageTraceSummary(vpage=event.vpage)
                summaries[event.vpage] = summary
            summary.reads += event.reads
            summary.writes += event.writes
            if event.reads:
                summary.readers.add(event.cpu)
            if event.writes:
                summary.writers.add(event.cpu)
        return summaries

    # -- persistence ---------------------------------------------------------

    def save_jsonl(self, path: Union[str, pathlib.Path]) -> int:
        """Write the trace as JSON lines; returns the line count.

        Reference events carry ``"t": "ref"`` and faults ``"t": "fault"``,
        in execution order, so traces can be archived and analyzed offline
        — the Section 5 "trace-driven analyses" workflow.
        """
        path = pathlib.Path(path)
        lines = 0
        merged = sorted(
            [("ref", e) for e in self._events]
            + [("fault", f) for f in self._faults],
            key=lambda item: item[1].sequence,
        )
        with path.open("w") as handle:
            for kind, event in merged:
                if kind == "ref":
                    record = {
                        "t": "ref",
                        "seq": event.sequence,
                        "round": event.round_index,
                        "cpu": event.cpu,
                        "vpage": event.vpage,
                        "page": event.page_id,
                        "r": event.reads,
                        "w": event.writes,
                        "loc": event.location.value,
                        "wd": event.writable_data,
                    }
                else:
                    record = {
                        "t": "fault",
                        "seq": event.sequence,
                        "round": event.round_index,
                        "cpu": event.cpu,
                        "vpage": event.vpage,
                        "kind": event.kind.value,
                    }
                handle.write(json.dumps(record) + "\n")
                lines += 1
        return lines

    @classmethod
    def load_jsonl(cls, path: Union[str, pathlib.Path]) -> "TraceCollector":
        """Read a trace previously written by :meth:`save_jsonl`."""
        path = pathlib.Path(path)
        trace = cls()
        with path.open() as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                kind = record.get("t")
                if kind == "ref":
                    trace._events.append(
                        RefEvent(
                            sequence=record["seq"],
                            round_index=record["round"],
                            cpu=record["cpu"],
                            vpage=record["vpage"],
                            page_id=record["page"],
                            reads=record["r"],
                            writes=record["w"],
                            location=MemoryLocation(record["loc"]),
                            writable_data=record["wd"],
                        )
                    )
                elif kind == "fault":
                    trace._faults.append(
                        FaultEvent(
                            sequence=record["seq"],
                            round_index=record["round"],
                            cpu=record["cpu"],
                            vpage=record["vpage"],
                            kind=AccessKind(record["kind"]),
                        )
                    )
                else:
                    raise ConfigurationError(
                        f"{path}:{line_number}: unknown trace record {kind!r}"
                    )
        trace._sequence = (
            max(
                [e.sequence for e in trace._events]
                + [f.sequence for f in trace._faults],
                default=-1,
            )
            + 1
        )
        return trace

    def local_fraction(self, writable_only: bool = True) -> Optional[float]:
        """Observed α over the trace (local refs / all refs)."""
        local = 0
        total = 0
        for event in self._events:
            if writable_only and not event.writable_data:
                continue
            n = event.reads + event.writes
            total += n
            if event.location is MemoryLocation.LOCAL:
                local += n
        if total == 0:
            return None
        return local / total
