"""The cache-backed dataset layer: ``.repro-cache/`` as system of record.

Every number this repository publishes is computed by some
fingerprinted :class:`~repro.exp.spec.RunSpec`, and PR 5's
content-addressed :class:`~repro.exp.cache.ResultCache` already holds
the byte-identical :class:`~repro.exp.spec.Outcome` for every spec that
has ever run.  This module closes the loop, in the shape of
MBradbury/slp's ``data.table``/``data.graph`` pipeline: scan the cache
directory, join each cached outcome back to its spec key (workload,
policy, threshold, topology, seed, fault profile), derive the metrics
the paper's tables are made of (α, β, γ, speedup, elapsed-µs, TLB hit
ratio, fault/recovery counters) into a
:class:`~repro.analysis.frames.DataTable`, and generate summary tables
and versus-plots from it — with **zero re-execution** and a fingerprint
footnote on every artifact.

Layers, bottom up:

* :class:`CacheDataset` — a loaded scan with spec-addressed lookup and
  the flat derived-metric table (:meth:`CacheDataset.table`);
* :func:`evaluation_from_dataset` — rejoins the paper's three-run
  triples (Tnuma/Tglobal/Tlocal) from cached outcomes and solves the
  Section 3.1 model, yielding the exact
  :class:`~repro.analysis.report.Evaluation` the Table 3/4 renderers
  already consume;
* section generators (:func:`threshold_versus_section`,
  :func:`chaos_fan_section`, :func:`summary_section`) — slp-style
  summary and versus artifacts, each returning its text together with
  the contributing fingerprints so
  :mod:`repro.analysis.repro_report` can footnote provenance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis import model as eqs
from repro.analysis.frames import DataTable, Row
from repro.analysis.report import Evaluation, EvaluationRow
from repro.analysis.versus import versus_from_table
from repro.exp.cache import (
    CACHE_SCHEMA,
    DEFAULT_CACHE_DIR,
    CacheEntry,
    CacheScan,
    ResultCache,
)
from repro.exp.grid import (
    DEFAULT_TOURNAMENT_POLICIES,
    PlacementSpecs,
    PolicyChoice,
    policy_tournament,
    table3_grid,
)
from repro.exp.spec import Outcome, RunSpec
from repro.sim.harness import PlacementMeasurement

#: Fingerprint prefix length used in human-facing footnotes; full
#: fingerprints always travel in the ``--json`` manifest.
SHORT_FP = 12


def short_fp(fingerprint: str) -> str:
    """The human-facing fingerprint prefix (manifests keep the full hash)."""
    return fingerprint[:SHORT_FP]


def render_params(pairs) -> str:
    """Canonical compact rendering of policy-parameter pairs.

    Empty pairs render as the empty string so the default-policy rows
    (every pre-existing cache entry) are visually unchanged.
    """
    return ",".join(f"{k}={v}" for k, v in sorted(pairs))


def derive_row(entry: CacheEntry) -> Row:
    """Flatten one cache entry into the derived-metric table's row shape.

    Spec identity columns come straight from the spec key; metric
    columns are normalized across outcome kinds where they exist for
    both (times, rounds, moves) and ``None`` where they do not, so one
    table holds plain runs and chaos runs side by side.
    """
    spec, outcome = entry.spec, entry.outcome
    row: Row = {
        "fingerprint": entry.fingerprint,
        "kind": outcome.kind,
        "workload": spec.workload,
        "policy": spec.policy,
        "policy_params": render_params(spec.policy_params),
        "threshold": spec.threshold,
        "quick": spec.quick,
        "n_processors": spec.n_processors,
        "n_threads": spec.n_threads,
        "fault_profile": spec.fault_profile,
        "fault_seed": spec.fault_seed,
        "user_time_s": outcome.user_time_us / 1e6,
        "system_time_s": outcome.system_time_us / 1e6,
        "elapsed_us": outcome.elapsed_us,
        "rounds": outcome.rounds,
    }
    if outcome.result is not None:
        result = outcome.result
        row.update(
            {
                "measured_alpha": result.measured_alpha,
                "store_fraction": result.store_fraction,
                "moves": result.stats.moves,
                "copies_to_local": result.stats.copies_to_local,
                "syncs": result.stats.syncs,
                "zero_fills": result.stats.zero_fills,
                "local_memory_fallbacks": (
                    result.stats.local_memory_fallbacks
                ),
                "faults_injected": None,
                "transfer_retries": result.stats.transfer_retries,
                "degraded_pages": None,
                "offline_frames": None,
                "tlb_hit_ratio": None,
                "tlb_shootdowns": None,
            }
        )
    else:
        chaos = outcome.chaos
        injected = sum(
            value
            for key, value in chaos.faults.items()
            if key.startswith("injected_") and isinstance(value, int)
        )
        tlb_lookups = chaos.tlb.get("hits", 0) + chaos.tlb.get("misses", 0)
        row.update(
            {
                "measured_alpha": None,
                "store_fraction": None,
                "moves": chaos.numa.get("moves"),
                "copies_to_local": chaos.numa.get("copies_to_local"),
                "syncs": chaos.numa.get("syncs"),
                "zero_fills": chaos.numa.get("zero_fills"),
                "local_memory_fallbacks": chaos.numa.get(
                    "local_memory_fallbacks"
                ),
                "faults_injected": injected,
                "transfer_retries": chaos.faults.get("transfer_retries"),
                "degraded_pages": chaos.degraded_pages,
                "offline_frames": chaos.offline_frames,
                "tlb_hit_ratio": (
                    chaos.tlb.get("hits", 0) / tlb_lookups
                    if tlb_lookups
                    else None
                ),
                "tlb_shootdowns": chaos.tlb.get("shootdowns"),
            }
        )
    return row


class CacheDataset:
    """A loaded cache scan with spec-addressed lookup and derived metrics."""

    def __init__(self, scan: CacheScan) -> None:
        self.scan = scan
        self._by_fp = scan.by_fingerprint()
        self._table: Optional[DataTable] = None

    @classmethod
    def load(
        cls, root: Union[str, Path] = DEFAULT_CACHE_DIR
    ) -> "CacheDataset":
        """Scan *root* (corrupt/foreign/stale files skipped, not fatal)."""
        return cls(ResultCache(root).scan())

    # -- lookup --------------------------------------------------------------

    @property
    def entries(self) -> List[CacheEntry]:
        """Every valid entry, in stable (path-sorted) order."""
        return self.scan.entries

    def __len__(self) -> int:
        return len(self.scan.entries)

    def has(self, spec: RunSpec) -> bool:
        """Whether *spec*'s outcome is in the cache."""
        return spec.fingerprint() in self._by_fp

    def get(self, spec: RunSpec) -> Optional[Outcome]:
        """The cached outcome for *spec*, or ``None``."""
        entry = self._by_fp.get(spec.fingerprint())
        return None if entry is None else entry.outcome

    def entry_for(self, spec: RunSpec) -> Optional[CacheEntry]:
        """The full cache entry for *spec*, or ``None``."""
        return self._by_fp.get(spec.fingerprint())

    def missing(self, specs: Sequence[RunSpec]) -> List[RunSpec]:
        """The subset of *specs* the cache cannot serve (input order)."""
        return [spec for spec in specs if not self.has(spec)]

    # -- derived metrics -----------------------------------------------------

    def table(self) -> DataTable:
        """The derived-metric table: one row per valid cache entry."""
        if self._table is None:
            self._table = DataTable(
                [derive_row(entry) for entry in self.entries]
            )
        return self._table


@dataclass
class EvaluationJoin:
    """A Tables 3–4 evaluation rejoined purely from cached outcomes."""

    evaluation: Evaluation
    #: Applications whose full Tnuma/Tglobal/Tlocal triple was cached.
    complete: List[str] = field(default_factory=list)
    #: Required specs the cache could not serve.
    missing: List[RunSpec] = field(default_factory=list)
    #: Contributing spec fingerprints (sorted, full length).
    fingerprints: List[str] = field(default_factory=list)

    @property
    def required(self) -> int:
        """Unique specs the evaluation needs."""
        return len(self.fingerprints) + len(self.missing)

    @property
    def cache_ratio(self) -> float:
        """Served / required (1.0 when nothing is required)."""
        if self.required == 0:
            return 1.0
        return len(self.fingerprints) / self.required


def placement_triples(
    apps: Optional[Sequence[str]] = None,
    n_processors: int = 7,
    threshold: int = 4,
    quick: bool = False,
) -> List[PlacementSpecs]:
    """The report's required grid — identical to ``batch --grid table3``.

    Sharing :func:`~repro.exp.grid.table3_grid` (including its
    ``check_invariants=False`` default) is what guarantees the specs a
    ``repro-numa batch`` run caches are the exact fingerprints a
    ``repro-numa report --from-cache`` later looks up.
    """
    return table3_grid(
        apps=apps,
        n_processors=n_processors,
        threshold=threshold,
        quick=quick,
    )


def evaluation_from_dataset(
    dataset: CacheDataset,
    apps: Optional[Sequence[str]] = None,
    n_processors: int = 7,
    threshold: int = 4,
    quick: bool = False,
) -> EvaluationJoin:
    """Rebuild the Tables 3–4 evaluation from cached outcomes only.

    Applications with an incomplete triple are left out of the
    evaluation and reported via :attr:`EvaluationJoin.missing`, so a
    partially warmed cache degrades to a partial (still correct, still
    footnoted) report instead of an error.
    """
    rows: List[EvaluationRow] = []
    complete: List[str] = []
    missing: List[RunSpec] = []
    fingerprints: List[str] = []
    for group in placement_triples(
        apps, n_processors=n_processors, threshold=threshold, quick=quick
    ):
        outcomes = [dataset.get(spec) for spec in group.specs]
        absent = [
            spec
            for spec, outcome in zip(group.specs, outcomes)
            if outcome is None
        ]
        if absent:
            missing.extend(absent)
            continue
        tnuma, tglobal, tlocal = (outcome.result for outcome in outcomes)
        measurement = PlacementMeasurement(
            workload=group.application,
            g_over_l=group.tnuma.resolve_workload().g_over_l,
            numa=tnuma,
            all_global=tglobal,
            local=tlocal,
        )
        params = eqs.solve(
            measurement.t_global_s,
            measurement.t_numa_s,
            measurement.t_local_s,
            measurement.g_over_l,
        )
        rows.append(
            EvaluationRow(
                application=group.application,
                measurement=measurement,
                params=params,
            )
        )
        complete.append(group.application)
        fingerprints.extend(spec.fingerprint() for spec in group.specs)
    return EvaluationJoin(
        evaluation=Evaluation(
            rows=rows, n_processors=n_processors, threshold=threshold
        ),
        complete=complete,
        missing=missing,
        fingerprints=sorted(fingerprints),
    )


def footnote(fingerprints: Sequence[str], note: str = "") -> str:
    """The provenance line under every cache-derived artifact."""
    shorts = ", ".join(short_fp(fp) for fp in sorted(set(fingerprints)))
    suffix = f"; {note}" if note else ""
    return (
        f"> derived from {len(set(fingerprints))} cached spec(s) "
        f"[{CACHE_SCHEMA}]: {shorts}{suffix}"
    )


#: A generated artifact: title, body text, contributing fingerprints.
Section = Tuple[str, str, List[str]]


def summary_section(dataset: CacheDataset) -> Section:
    """slp-style summary: every cached run rolled up per configuration."""
    table = dataset.table()
    runs = table.where(kind="run")
    if not runs:
        return (
            "Cache summary",
            "(no plain-run entries in the cache)",
            [],
        )
    summary = runs.aggregate(
        (
            "workload", "policy", "policy_params", "threshold", "quick",
            "n_processors",
        ),
        {
            "specs": ("fingerprint", "count"),
            "user_s": ("user_time_s", "mean"),
            "system_s": ("system_time_s", "mean"),
            "moves": ("moves", "sum"),
            "alpha": ("measured_alpha", "mean"),
        },
    ).sort_by(
        "workload", "policy", "policy_params", "threshold", "quick",
        "n_processors",
    )
    fps = [str(fp) for fp in runs.column("fingerprint")]
    return ("Cache summary (plain runs)", summary.to_markdown(), fps)


def threshold_versus_section(
    dataset: CacheDataset,
    n_processors: int = 7,
    quick: bool = False,
) -> Section:
    """γ versus move threshold, one series per cached application.

    γ needs each application's Tlocal baseline (all-local on one
    processor), so only workloads with both a cached baseline and at
    least one cached ``move-threshold`` run appear; the band collapses
    to the mean marker because these runs are deterministic.
    """
    table = dataset.table()
    tnuma = table.where(
        kind="run",
        policy="move-threshold",
        quick=quick,
        n_processors=n_processors,
        fault_profile=None,
    )
    tlocal = table.where(
        kind="run", policy="all-local", quick=quick, n_processors=1,
        fault_profile=None,
    )
    base: Dict[object, Tuple[float, str]] = {}
    for row in tlocal.rows:
        base[row["workload"]] = (
            float(row["user_time_s"]), str(row["fingerprint"])
        )
    points: List[Row] = []
    fps: List[str] = []
    for row in tnuma.rows:
        baseline = base.get(row["workload"])
        if baseline is None or baseline[0] <= 0:
            continue
        points.append(
            {
                "workload": row["workload"],
                "threshold": row["threshold"],
                "gamma": float(row["user_time_s"]) / baseline[0],
                "moves": row["moves"],
                "t_numa_s": row["user_time_s"],
                "s_numa_s": row["system_time_s"],
            }
        )
        fps.append(str(row["fingerprint"]))
        fps.append(baseline[1])
    if not points:
        return (
            "Move-threshold versus-plot",
            "(no cached move-threshold runs with an all-local baseline)",
            [],
        )
    sweep = DataTable(points).sort_by("workload", "threshold")
    plot = versus_from_table(
        sweep,
        x="threshold",
        y="gamma",
        series_by="workload",
        title=(
            f"user-time expansion gamma vs move threshold "
            f"({n_processors} processors)"
        ),
    )
    detail = sweep.select(
        "workload", "threshold", "t_numa_s", "s_numa_s", "moves", "gamma"
    ).to_markdown()
    return (
        "Move-threshold versus-plot",
        "```\n" + plot + "\n```\n\n" + detail,
        fps,
    )


def policy_tournament_section(
    dataset: CacheDataset,
    apps: Optional[Sequence[str]] = None,
    policies: Sequence[PolicyChoice] = DEFAULT_TOURNAMENT_POLICIES,
    n_processors: int = 7,
    threshold: int = 4,
    quick: bool = False,
) -> Section:
    """The policy tournament: α/β/γ per entrant, deltas vs the paper.

    For every application with cached Tglobal/Tlocal baselines, each
    cached entrant's run is pushed through the Section 3.1 model
    exactly as Table 3 is, and its α and γ are compared against the
    ``move-threshold`` entrant of the same application (Δα > 0 means
    more local references than the paper's policy; Δγ < 0 means closer
    to uniprocessor time).  Entrants or baselines the cache cannot
    serve are listed instead of silently dropped.
    """
    points: List[Row] = []
    fps: List[str] = []
    absent: List[RunSpec] = []
    for tournament in policy_tournament(
        apps=apps,
        policies=policies,
        n_processors=n_processors,
        threshold=threshold,
        quick=quick,
    ):
        tglobal = dataset.get(tournament.tglobal)
        tlocal = dataset.get(tournament.tlocal)
        if tglobal is None or tlocal is None:
            absent.extend(
                spec
                for spec, outcome in (
                    (tournament.tglobal, tglobal),
                    (tournament.tlocal, tlocal),
                )
                if outcome is None
            )
            continue
        g_over_l = tournament.tglobal.resolve_workload().g_over_l
        solved: Dict[str, Tuple[object, float, float]] = {}
        for label, spec in tournament.entrants.items():
            outcome = dataset.get(spec)
            if outcome is None:
                absent.append(spec)
                continue
            measurement = PlacementMeasurement(
                workload=tournament.application,
                g_over_l=g_over_l,
                numa=outcome.result,
                all_global=tglobal.result,
                local=tlocal.result,
            )
            params = eqs.solve(
                measurement.t_global_s,
                measurement.t_numa_s,
                measurement.t_local_s,
                measurement.g_over_l,
            )
            solved[label] = (params, measurement.t_numa_s, spec.fingerprint())
        if not solved:
            continue
        baseline = solved.get("move-threshold")
        for label, (params, t_numa_s, fingerprint) in solved.items():
            d_alpha = d_beta = d_gamma = None
            if baseline is not None and label != "move-threshold":
                base_params = baseline[0]
                if params.alpha is not None and base_params.alpha is not None:
                    d_alpha = round(params.alpha - base_params.alpha, 4)
                d_beta = round(params.beta - base_params.beta, 4)
                d_gamma = round(params.gamma - base_params.gamma, 4)
            points.append(
                {
                    "workload": tournament.application,
                    "policy": label,
                    "t_numa_s": round(t_numa_s, 3),
                    "alpha": (
                        None
                        if params.alpha is None
                        else round(params.alpha, 4)
                    ),
                    "beta": round(params.beta, 4),
                    "gamma": round(params.gamma, 4),
                    "d_alpha": d_alpha,
                    "d_beta": d_beta,
                    "d_gamma": d_gamma,
                }
            )
            fps.append(fingerprint)
        fps.append(tournament.tglobal.fingerprint())
        fps.append(tournament.tlocal.fingerprint())
    if not points:
        body = "(no cached tournament runs)"
        if absent:
            body += "\n\nmissing specs:\n\n" + "\n".join(
                f"- `{line}`" for line in missing_lines(absent)
            )
        return ("Policy tournament", body, [])
    body = DataTable(points).sort_by("workload", "policy").to_markdown()
    if absent:
        body += "\n\nmissing specs:\n\n" + "\n".join(
            f"- `{line}`" for line in missing_lines(absent)
        )
    return ("Policy tournament", body, fps)


def chaos_fan_section(dataset: CacheDataset) -> Section:
    """Seed-fan rollup of every cached chaos run, with min/mean/max bands."""
    chaos = dataset.table().where(kind="chaos")
    if not chaos:
        return ("Chaos seed fans", "(no chaos entries in the cache)", [])
    fan = chaos.aggregate(
        ("workload", "fault_profile"),
        {
            "seeds": ("fault_seed", "count"),
            "inj_min": ("faults_injected", "min"),
            "inj_mean": ("faults_injected", "mean"),
            "inj_max": ("faults_injected", "max"),
            "retries": ("transfer_retries", "sum"),
            "degraded": ("degraded_pages", "sum"),
            "tlb_hit": ("tlb_hit_ratio", "mean"),
        },
    ).sort_by("workload", "fault_profile")
    plot = versus_from_table(
        chaos,
        x="fault_profile",
        y="faults_injected",
        series_by="workload",
        title="injected faults per profile (band = spread across seeds)",
    )
    fps = [str(fp) for fp in chaos.column("fingerprint")]
    return (
        "Chaos seed fans",
        fan.to_markdown() + "\n\n```\n" + plot + "\n```",
        fps,
    )


def missing_lines(missing: Sequence[RunSpec]) -> List[str]:
    """Human-readable ``--missing`` listing (label + fingerprint)."""
    return [
        f"{spec.fingerprint()}  {spec.label}"
        for spec in sorted(missing, key=lambda s: s.fingerprint())
    ]


def table3_frame(evaluation: Evaluation) -> DataTable:
    """Table 3 as a DataTable, for the CSV/LaTeX emitters."""
    rows = []
    for row in evaluation.rows:
        m = row.measurement
        rows.append(
            {
                "application": row.application,
                "t_global_s": round(m.t_global_s, 3),
                "t_numa_s": round(m.t_numa_s, 3),
                "t_local_s": round(m.t_local_s, 3),
                "alpha": (
                    None
                    if row.params.alpha is None
                    else round(row.params.alpha, 4)
                ),
                "beta": round(row.params.beta, 4),
                "gamma": round(row.params.gamma, 4),
                "speedup_vs_global": (
                    round(m.t_global_s / m.t_numa_s, 4)
                    if m.t_numa_s
                    else None
                ),
            }
        )
    return DataTable(rows)


def table4_frame(evaluation: Evaluation) -> DataTable:
    """Table 4 as a DataTable, for the CSV/LaTeX emitters."""
    from repro.workloads import TABLE_4_WORKLOADS

    rows = []
    for row in evaluation.rows:
        if row.application not in TABLE_4_WORKLOADS:
            continue
        m = row.measurement
        rows.append(
            {
                "application": row.application,
                "s_numa_s": round(m.numa.system_time_s, 4),
                "s_global_s": round(m.all_global.system_time_s, 4),
                "delta_s": (
                    None
                    if row.delta_s is None
                    else round(row.delta_s, 4)
                ),
                "t_numa_s": round(m.t_numa_s, 3),
                "delta_over_t": round(row.delta_over_t, 5),
            }
        )
    return DataTable(rows)
