"""Elapsed-time and speedup analysis.

The paper deliberately reports *total user time* rather than speedups:
"our use of total user time eliminates the concurrency and serialization
artifacts that show up in elapsed (wall clock) times and speedup curves"
(Section 3.1).  Those artifacts are themselves interesting — serialized
initialization phases, load imbalance, and the γ penalty all show up as
sublinear speedup — and the simulator can report both views.

Elapsed time is approximated as the busiest processor's virtual time,
which is exact for our engine's contention-free model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.core.policies import MoveThresholdPolicy
from repro.core.policy import NUMAPolicy
from repro.errors import ConfigurationError
from repro.sim.harness import run_once
from repro.sim.result import RunResult
from repro.workloads.base import Workload


@dataclass(frozen=True)
class SpeedupPoint:
    """One machine size on a speedup curve."""

    n_processors: int
    elapsed_us: float
    total_user_us: float
    total_system_us: float
    speedup: float

    @property
    def efficiency(self) -> float:
        """Speedup per processor (1.0 = perfectly linear)."""
        return self.speedup / self.n_processors


@dataclass(frozen=True)
class SpeedupCurve:
    """A workload's speedup across machine sizes."""

    workload: str
    points: List[SpeedupPoint]

    def point(self, n_processors: int) -> SpeedupPoint:
        """The point for one machine size."""
        for point in self.points:
            if point.n_processors == n_processors:
                return point
        raise KeyError(n_processors)

    def format(self) -> str:
        """Human-readable curve."""
        lines = [f"{self.workload}: speedup curve"]
        for point in self.points:
            lines.append(
                f"  {point.n_processors}p: elapsed "
                f"{point.elapsed_us / 1e6:8.3f}s  speedup "
                f"{point.speedup:5.2f}  efficiency {point.efficiency:4.2f}"
            )
        return "\n".join(lines)


def elapsed_us(result: RunResult) -> float:
    """The run's makespan: the busiest processor's total time."""
    return max((t.total_us for t in result.per_cpu), default=0.0)


def speedup_curve(
    workload_factory: Callable[[], Workload],
    processors: Sequence[int] = (1, 2, 4, 7),
    policy_factory: Optional[Callable[[], NUMAPolicy]] = None,
    check_invariants: bool = False,
) -> SpeedupCurve:
    """Measure elapsed time across machine sizes and derive speedups.

    The single-processor run is the baseline; each size runs the same
    fixed-total-work application under the same policy.
    """
    if not processors or min(processors) < 1:
        raise ConfigurationError("need at least one positive machine size")
    if policy_factory is None:
        policy_factory = lambda: MoveThresholdPolicy(threshold=4)  # noqa: E731
    sizes = sorted(set(processors))
    if sizes[0] != 1:
        sizes = [1] + sizes
    baseline_us: Optional[float] = None
    points = []
    name = ""
    for n in sizes:
        workload = workload_factory()
        name = workload.name
        result = run_once(
            workload,
            policy_factory(),
            n_processors=n,
            check_invariants=check_invariants,
        )
        wall = elapsed_us(result)
        if baseline_us is None:
            baseline_us = wall
        points.append(
            SpeedupPoint(
                n_processors=n,
                elapsed_us=wall,
                total_user_us=result.user_time_us,
                total_system_us=result.system_time_us,
                speedup=baseline_us / wall if wall > 0 else 0.0,
            )
        )
    return SpeedupCurve(workload=name, points=points)
