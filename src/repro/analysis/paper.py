"""Published numbers from the paper, for side-by-side reporting.

Values are transcribed from Tables 3 and 4 and Section 2.2 of Bolosky,
Fitzgerald & Scott (SOSP '89).  Reports print these next to the
simulator's measurements; EXPERIMENTS.md records the comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional


@dataclass(frozen=True)
class Table3Row:
    """One application's row in the paper's Table 3 (times in seconds)."""

    application: str
    t_global: float
    t_numa: float
    t_local: float
    alpha: Optional[float]  # None where the paper prints "na"
    beta: float
    gamma: float
    #: G/L used for the model (footnote 3: 2.3 for all-fetch programs).
    g_over_l: float = 2.0


#: Table 3: measured user times and computed model parameters.
TABLE_3: Dict[str, Table3Row] = {
    row.application: row
    for row in (
        Table3Row("ParMult", 67.4, 67.4, 67.3, None, 0.00, 1.00),
        Table3Row("Gfetch", 60.2, 60.2, 26.5, 0.0, 1.0, 2.27, g_over_l=2.3),
        Table3Row("IMatMult", 82.1, 69.0, 68.2, 0.94, 0.26, 1.01, g_over_l=2.3),
        Table3Row("Primes1", 18502.2, 17413.9, 17413.3, 1.0, 0.06, 1.00),
        Table3Row("Primes2", 5754.3, 4972.9, 4968.9, 0.99, 0.16, 1.00),
        Table3Row("Primes3", 39.1, 37.4, 28.8, 0.17, 0.36, 1.30),
        Table3Row("FFT", 687.4, 449.0, 438.4, 0.96, 0.56, 1.02),
        Table3Row("PlyTrace", 56.9, 38.8, 38.0, 0.96, 0.50, 1.02),
    )
}


@dataclass(frozen=True)
class Table4Row:
    """One application's row in Table 4 (7-processor system times, s)."""

    application: str
    s_numa: float
    s_global: float
    delta_s: Optional[float]  # None where the paper prints "na"
    t_numa: float
    delta_over_t: float  # ΔS / Tnuma, as a fraction


#: Table 4: system-time overhead of NUMA management on 7 processors.
TABLE_4: Dict[str, Table4Row] = {
    row.application: row
    for row in (
        Table4Row("IMatMult", 4.5, 1.2, 3.3, 82.1, 0.040),
        Table4Row("Primes1", 1.4, 2.3, None, 17413.9, 0.0),
        Table4Row("Primes2", 29.9, 8.5, 21.4, 4972.9, 0.004),
        Table4Row("Primes3", 11.2, 1.9, 9.3, 37.4, 0.249),
        Table4Row("FFT", 21.1, 10.0, 11.1, 449.0, 0.025),
    )
}

#: Section 2.2: measured 32-bit reference times on the ACE, microseconds.
ACE_LATENCIES = {
    "local_fetch_us": 0.65,
    "local_store_us": 0.84,
    "global_fetch_us": 1.5,
    "global_store_us": 1.4,
}

#: Section 2.2: quoted G/L ratios.
ACE_RATIOS = {
    "fetch": 2.3,
    "store": 1.7,
    "mix_45pct_stores": 2.0,
}

#: Section 4.2: Primes2's α before and after privatizing the divisors.
PRIMES2_FALSE_SHARING_ALPHA = {"shared_divisors": 0.66, "private_divisors": 1.00}

#: Section 2.3.2: default move threshold (boot-time parameter).
DEFAULT_THRESHOLD = 4

#: Applications that appear in Table 4 (the others' system time is not
#: reported by the paper).
TABLE_4_APPLICATIONS = tuple(TABLE_4)

#: All eight Table 3 applications, in the paper's row order.
TABLE_3_APPLICATIONS = tuple(TABLE_3)
