"""Shared fixtures: small machines and fully wired simulations."""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro.core.numa_manager import NUMAManager
from repro.core.policies import MoveThresholdPolicy
from repro.core.policy import NUMAPolicy
from repro.machine.config import MachineConfig, ace_config
from repro.machine.machine import Machine
from repro.vm.address_space import AddressSpace
from repro.vm.fault import FaultHandler
from repro.vm.page_pool import PagePool
from repro.vm.pmap import ACEPmap


@dataclass
class Rig:
    """A wired-up machine + VM + NUMA stack for protocol tests."""

    machine: Machine
    numa: NUMAManager
    pool: PagePool
    pmap: ACEPmap
    space: AddressSpace
    faults: FaultHandler

    @property
    def policy(self) -> NUMAPolicy:
        return self.numa.policy


def make_rig(
    n_processors: int = 4,
    policy: NUMAPolicy | None = None,
    local_pages_per_cpu: int = 64,
    global_pages: int = 128,
) -> Rig:
    """Build a small, fully wired simulation rig."""
    config = MachineConfig(
        n_processors=n_processors,
        local_pages_per_cpu=local_pages_per_cpu,
        global_pages=global_pages,
    )
    machine = Machine(config)
    if policy is None:
        policy = MoveThresholdPolicy(threshold=4)
    numa = NUMAManager(machine, policy, check_invariants=True)
    pool = PagePool(numa)
    pmap = ACEPmap(numa)
    space = AddressSpace()
    faults = FaultHandler(machine, space, pool, pmap)
    return Rig(
        machine=machine,
        numa=numa,
        pool=pool,
        pmap=pmap,
        space=space,
        faults=faults,
    )


@pytest.fixture
def rig() -> Rig:
    """Default 4-CPU rig with the paper's policy (threshold 4)."""
    return make_rig()


@pytest.fixture
def ace7() -> MachineConfig:
    """The paper's 7-processor evaluation machine."""
    return ace_config(7)
