"""The Handoff and LopsidedSharing microworkloads."""

import pytest

from repro.core.policies import HomeNodePolicy, MoveThresholdPolicy
from repro.core.policies.pragma import Pragma
from repro.sim.harness import run_once
from repro.workloads.handoff import Handoff
from repro.workloads.lopsided import LopsidedSharing


class TestHandoff:
    def test_default_threshold_keeps_consumer_local(self):
        result = run_once(
            Handoff.small(), MoveThresholdPolicy(threshold=4), n_processors=4
        )
        assert result.measured_alpha > 0.9

    def test_threshold_zero_pins_the_buffer(self):
        pinned = run_once(
            Handoff.small(), MoveThresholdPolicy(threshold=0), n_processors=4
        )
        default = run_once(
            Handoff.small(), MoveThresholdPolicy(threshold=4), n_processors=4
        )
        assert pinned.measured_alpha < default.measured_alpha
        assert pinned.user_time_us > default.user_time_us

    def test_extra_threads_idle_harmlessly(self):
        few = run_once(Handoff.small(), MoveThresholdPolicy(threshold=4), n_processors=2)
        many = run_once(
            Handoff.small(), MoveThresholdPolicy(threshold=4), n_processors=7
        )
        assert many.user_time_us == pytest.approx(
            few.user_time_us, rel=0.05
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            Handoff(pages=0)
        with pytest.raises(ValueError):
            Handoff(sweeps=0)

    def test_ownership_moves_are_few_under_the_default(self):
        result = run_once(
            Handoff.small(), MoveThresholdPolicy(threshold=4), n_processors=4
        )
        # One productive transfer per page, plus the peek-induced
        # re-claims; far below the pathological ping-pong counts.
        assert result.stats.moves <= Handoff.small().pages * 4


class TestLopsidedSharing:
    def test_share_validation(self):
        with pytest.raises(ValueError):
            LopsidedSharing(dominant_share=0.0)
        with pytest.raises(ValueError):
            LopsidedSharing(dominant_share=1.5)
        with pytest.raises(ValueError):
            LopsidedSharing(total_refs=0)

    def test_name_embeds_share(self):
        assert "80%" in LopsidedSharing(dominant_share=0.8).name

    def test_automatic_policy_pins_the_hot_region(self):
        result = run_once(
            LopsidedSharing(dominant_share=0.5, total_refs=40_000),
            MoveThresholdPolicy(threshold=4),
            n_processors=4,
        )
        assert result.measured_alpha < 0.35  # hot refs mostly global

    def test_remote_pragma_keeps_the_home_local(self):
        result = run_once(
            LopsidedSharing(
                dominant_share=0.9, total_refs=40_000, pragma=Pragma.REMOTE
            ),
            HomeNodePolicy(MoveThresholdPolicy(threshold=4)),
            n_processors=4,
        )
        assert result.stats.remote_mappings > 0
        assert result.stats.moves == 0
        # ~90% of references are the home's, made locally.
        assert result.measured_alpha > 0.75

    def test_dominant_share_controls_the_split(self):
        lop = run_once(
            LopsidedSharing(
                dominant_share=0.9, total_refs=40_000, pragma=Pragma.REMOTE
            ),
            HomeNodePolicy(MoveThresholdPolicy(threshold=4)),
            n_processors=4,
        )
        balanced = run_once(
            LopsidedSharing(
                dominant_share=0.3, total_refs=40_000, pragma=Pragma.REMOTE
            ),
            HomeNodePolicy(MoveThresholdPolicy(threshold=4)),
            n_processors=4,
        )
        assert lop.measured_alpha > balanced.measured_alpha
