"""Behaviour shared by every application workload."""

import pytest

from repro.core.policies import (
    AllGlobalPolicy,
    AllLocalPolicy,
    MoveThresholdPolicy,
)
from repro.sim.harness import build_simulation, run_once
from repro.workloads import small_workloads

WORKLOAD_ITEMS = sorted(small_workloads().items())
WORKLOAD_IDS = [name for name, _ in WORKLOAD_ITEMS]
WORKLOADS = [wl for _, wl in WORKLOAD_ITEMS]


@pytest.fixture(params=WORKLOADS, ids=WORKLOAD_IDS)
def workload(request):
    return request.param


class TestEveryWorkload:
    def test_runs_clean_under_the_threshold_policy(self, workload):
        result = run_once(workload, MoveThresholdPolicy(threshold=4), n_processors=4)
        assert result.user_time_us > 0

    def test_runs_clean_under_all_global(self, workload):
        result = run_once(workload, AllGlobalPolicy(), n_processors=4)
        assert result.user_time_us > 0

    def test_runs_clean_single_threaded_all_local(self, workload):
        result = run_once(
            workload, AllLocalPolicy(), n_processors=1, n_threads=1
        )
        assert result.user_time_us > 0

    def test_invariants_hold_at_exit(self, workload):
        sim = build_simulation(workload, MoveThresholdPolicy(threshold=4), 4)
        sim.engine.run(sim.threads)
        sim.numa.check_all_invariants()

    def test_deterministic(self, workload):
        a = run_once(workload, MoveThresholdPolicy(threshold=4), n_processors=4)
        b = run_once(workload, MoveThresholdPolicy(threshold=4), n_processors=4)
        assert a.user_time_us == b.user_time_us
        assert a.system_time_us == b.system_time_us
        assert a.stats.moves == b.stats.moves

    def test_build_is_pure_across_runs(self, workload):
        """Two consecutive builds must not share VM objects."""
        sim1 = build_simulation(workload, MoveThresholdPolicy(threshold=4), 2)
        sim2 = build_simulation(workload, MoveThresholdPolicy(threshold=4), 2)
        ids1 = {r.vm_object.object_id for r in sim1.space.regions}
        ids2 = {r.vm_object.object_id for r in sim2.space.regions}
        assert ids1.isdisjoint(ids2)

    def test_numa_between_local_and_global(self, workload):
        """Tlocal <= Tnuma and Tnuma <= Tglobal (within slack):
        the ordering the whole evaluation rests on."""
        numa = run_once(workload, MoveThresholdPolicy(threshold=4), n_processors=4)
        all_global = run_once(workload, AllGlobalPolicy(), n_processors=4)
        local = run_once(
            workload, AllLocalPolicy(), n_processors=1, n_threads=1
        )
        assert numa.user_time_us <= all_global.user_time_us * 1.02
        assert numa.user_time_us >= local.user_time_us * 0.98

    def test_work_is_fixed_not_per_thread(self, workload):
        """Section 3.1 requires the same total work regardless of the
        number of processors; user time may differ only through placement
        (bounded by the G/L ratio), not through workload scaling."""
        two = run_once(workload, MoveThresholdPolicy(threshold=4), n_processors=2)
        four = run_once(workload, MoveThresholdPolicy(threshold=4), n_processors=4)
        ratio = four.user_time_us / two.user_time_us
        assert 0.4 < ratio < 2.5
