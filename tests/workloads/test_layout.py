"""Layout builder and reference-emission helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.machine.config import MachineConfig
from repro.sim.ops import MemBlock
from repro.vm.address_space import AddressSpace
from repro.workloads.base import BuildContext
from repro.workloads.layout import (
    FractionalRefs,
    LayoutBuilder,
    WordRange,
    sweep_refs,
)


@pytest.fixture
def ctx() -> BuildContext:
    return BuildContext(
        space=AddressSpace(),
        n_threads=2,
        n_processors=2,
        machine_config=MachineConfig(n_processors=2),
    )


@pytest.fixture
def layout(ctx) -> LayoutBuilder:
    return LayoutBuilder(ctx)


class TestLayoutBuilder:
    def test_code_is_read_only(self, layout):
        region = layout.code(pages=2)
        assert not region.vm_object.writable
        assert region.n_pages == 2

    def test_stack_is_private_to_its_thread(self, layout):
        region = layout.stack(thread=1)
        assert region.vm_object.owner_thread == 1
        assert region.vm_object.writable

    def test_private_rounds_up_to_pages(self, layout):
        region = layout.private("p", words=1500, thread=0)
        assert region.n_pages == 2  # 1500 words > 1 page of 1024

    def test_shared_region(self, layout):
        region = layout.shared("s", words=10)
        assert region.n_pages == 1
        assert region.vm_object.sharing.value == "shared"

    def test_read_mostly_is_writable_but_flagged(self, layout):
        region = layout.read_mostly("r", words=10)
        assert region.vm_object.writable
        assert region.vm_object.sharing.value == "read-mostly"

    def test_page_of_word(self, layout):
        region = layout.shared("s", words=3000)
        assert layout.page_of_word(region, 0) == region.vpage_at(0)
        assert layout.page_of_word(region, 1024) == region.vpage_at(1)
        assert layout.page_of_word(region, 2999) == region.vpage_at(2)

    def test_regions_recorded_in_context(self, ctx, layout):
        layout.shared("alpha", words=10)
        assert "alpha" in ctx.regions

    def test_pages_for_words(self, ctx):
        assert ctx.pages_for_words(1) == 1
        assert ctx.pages_for_words(1024) == 1
        assert ctx.pages_for_words(1025) == 2


class TestWordRange:
    def test_pages_cover_the_range_exactly(self, layout):
        region = layout.shared("s", words=2500)
        spans = list(layout.range_of(region, 100, 2000).pages())
        assert sum(words for _, words in spans) == 2000
        assert spans[0] == (region.vpage_at(0), 924)  # to page boundary
        assert spans[1] == (region.vpage_at(1), 1024)
        assert spans[2] == (region.vpage_at(2), 52)

    def test_out_of_range_rejected(self, layout):
        region = layout.shared("s", words=10)  # one page
        with pytest.raises(ConfigurationError):
            WordRange(region, 0, 2000, 1024)

    def test_default_range_is_whole_region(self, layout):
        region = layout.shared("s", words=2048)
        assert layout.range_of(region).n_words == 2048


class TestSweepRefs:
    def test_sweep_totals_are_exact(self, layout):
        region = layout.shared("s", words=3000)
        blocks = list(
            sweep_refs(layout.range_of(region, 0, 3000), 0.5, 0.25)
        )
        assert sum(b.reads for b in blocks) == 1500
        assert sum(b.writes for b in blocks) == 750
        assert all(isinstance(b, MemBlock) for b in blocks)


class TestFractionalRefs:
    def test_carry_accumulates(self):
        frac = FractionalRefs()
        total = 0
        for _ in range(10):
            reads, _ = frac.take(0.25, 0.0)
            total += reads
        assert total == 2  # 10 * 0.25 = 2.5, carry holds the half

    def test_negative_rates_rejected(self):
        with pytest.raises(ConfigurationError):
            FractionalRefs().take(-0.1, 0.0)

    @given(
        rates=st.lists(
            st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
            min_size=1,
            max_size=200,
        )
    )
    def test_total_never_off_by_more_than_one(self, rates):
        """The carry keeps the emitted total within 1 of the exact sum."""
        frac = FractionalRefs()
        emitted = 0
        for rate in rates:
            reads, _ = frac.take(rate, 0.0)
            emitted += reads
        assert abs(emitted - sum(rates)) < 1.0 + 1e-6
