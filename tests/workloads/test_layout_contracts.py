"""Layout contracts: each application declares the memory image the
paper describes for it (Section 3.2)."""

import pytest

from repro.machine.config import MachineConfig
from repro.vm.address_space import AddressSpace
from repro.vm.vm_object import Sharing
from repro.workloads import small_workloads
from repro.workloads.base import BuildContext


def regions_of(workload, n_threads=4):
    ctx = BuildContext(
        space=AddressSpace(),
        n_threads=n_threads,
        n_processors=n_threads,
        machine_config=MachineConfig(n_processors=4),
    )
    workload.build(ctx)
    return {name: region.vm_object for name, region in ctx.regions.items()}


class TestDeclaredLayouts:
    def test_imatmult_declares_inputs_read_mostly(self):
        objects = regions_of(small_workloads()["IMatMult"])
        assert objects["matrix.A"].sharing is Sharing.READ_MOSTLY
        assert objects["matrix.B"].sharing is Sharing.READ_MOSTLY
        assert objects["matrix.C"].sharing is Sharing.SHARED
        # The inputs are writable — "data that is writable, but that is
        # never written" is the whole point.
        assert objects["matrix.A"].writable

    def test_primes2_has_private_divisor_vectors(self):
        objects = regions_of(small_workloads()["Primes2"], n_threads=3)
        for t in range(3):
            divisors = objects[f"divisors{t}"]
            assert divisors.sharing is Sharing.PRIVATE
            assert divisors.owner_thread == t
        assert objects["primes.output"].sharing is Sharing.SHARED

    def test_primes3_sieve_is_shared(self):
        objects = regions_of(small_workloads()["Primes3"])
        assert objects["sieve.bits"].sharing is Sharing.SHARED

    def test_fft_workspaces_are_private(self):
        objects = regions_of(small_workloads()["FFT"], n_threads=3)
        for t in range(3):
            assert objects[f"fft.work{t}"].sharing is Sharing.PRIVATE
        assert objects["fft.matrix"].sharing is Sharing.SHARED

    def test_plytrace_geometry_is_read_mostly(self):
        objects = regions_of(small_workloads()["PlyTrace"])
        assert objects["polygon.store"].sharing is Sharing.READ_MOSTLY
        assert objects["workpile.queue"].sharing is Sharing.SHARED

    def test_every_workload_has_code_or_text(self):
        for name, workload in small_workloads().items():
            objects = regions_of(workload)
            text_objects = [
                obj for obj in objects.values() if not obj.writable
            ]
            assert text_objects, f"{name} declares no program text"

    def test_all_stacks_are_thread_owned(self):
        for name, workload in small_workloads().items():
            objects = regions_of(workload, n_threads=3)
            for obj_name, obj in objects.items():
                if obj_name.startswith("stack"):
                    assert obj.owner_thread is not None, (
                        f"{name}: {obj_name} has no owner"
                    )
                    assert obj.sharing is Sharing.PRIVATE

    def test_region_names_are_unique_per_build(self):
        for name, workload in small_workloads().items():
            ctx = BuildContext(
                space=AddressSpace(),
                n_threads=4,
                n_processors=4,
                machine_config=MachineConfig(n_processors=4),
            )
            workload.build(ctx)
            # ctx.regions is a dict: name collisions would have clobbered
            # entries, so the count must equal the space's region count.
            assert len(ctx.regions) == len(ctx.space.regions), name
