"""Work conservation: the Section 3.1 measurement prerequisite.

"Applications had to do about the same amount of work, independent of
the number of processors" — otherwise Tlocal (one thread) would not be
comparable to Tnuma (seven).  These property tests verify it for every
workload: the total *operation content* (compute microseconds and data
references emitted by the bodies, independent of any machine) is nearly
invariant in the thread count.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.config import MachineConfig
from repro.sim.ops import Compute, MemBlock, Syscall
from repro.vm.address_space import AddressSpace
from repro.workloads import small_workloads
from repro.workloads.base import BuildContext

WORKLOAD_ITEMS = sorted(small_workloads().items())


def drain(workload, n_threads):
    """Consume every thread body without a machine; tally the content."""
    ctx = BuildContext(
        space=AddressSpace(),
        n_threads=n_threads,
        n_processors=n_threads,
        machine_config=MachineConfig(
            n_processors=min(8, max(1, n_threads))
        ),
    )
    bodies = workload.build(ctx)
    compute_us = 0.0
    reads = 0
    writes = 0
    ops = 0
    for body in bodies:
        for op in body:
            ops += 1
            if isinstance(op, Compute):
                compute_us += op.us
            elif isinstance(op, MemBlock):
                reads += op.reads
                writes += op.writes
            elif isinstance(op, Syscall):
                compute_us += op.service_us
    return compute_us, reads, writes, ops


@pytest.mark.parametrize(
    "name, workload", WORKLOAD_ITEMS, ids=[n for n, _ in WORKLOAD_ITEMS]
)
class TestWorkConservation:
    def test_compute_invariant_in_thread_count(self, name, workload):
        compute_1, _, _, _ = drain(workload, 1)
        compute_4, _, _, _ = drain(workload, 4)
        compute_7, _, _, _ = drain(workload, 7)
        assert compute_4 == pytest.approx(compute_1, rel=0.05)
        assert compute_7 == pytest.approx(compute_1, rel=0.05)

    def test_references_nearly_invariant_in_thread_count(
        self, name, workload
    ):
        _, reads_1, writes_1, _ = drain(workload, 1)
        _, reads_7, writes_7, _ = drain(workload, 7)
        # Some per-thread traffic (work-pile claims, divisor top-ups)
        # legitimately scales with threads; it must stay a small part.
        assert reads_7 == pytest.approx(reads_1, rel=0.20)
        assert writes_7 == pytest.approx(writes_1, rel=0.25)

    def test_bodies_are_nonempty(self, name, workload):
        _, _, _, ops = drain(workload, 2)
        assert ops > 0


class TestDrainDeterminism:
    @given(
        n_threads=st.integers(min_value=1, max_value=8),
        pick=st.integers(min_value=0, max_value=len(WORKLOAD_ITEMS) - 1),
    )
    @settings(max_examples=20, deadline=None)
    def test_same_build_same_content(self, n_threads, pick):
        name, workload = WORKLOAD_ITEMS[pick]
        first = drain(workload, n_threads)
        second = drain(workload, n_threads)
        assert first == second, name
