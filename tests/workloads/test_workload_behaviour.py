"""Per-application behaviour: the sharing patterns the paper describes."""

import pytest

from repro.core.policies import MoveThresholdPolicy
from repro.core.state import PageState
from repro.sim.harness import build_simulation, run_once
from repro.workloads.fft import FFT
from repro.workloads.gfetch import Gfetch
from repro.workloads.imatmult import IMatMult
from repro.workloads.parmult import ParMult
from repro.workloads.plytrace import PlyTrace
from repro.workloads.primes import (
    Primes1,
    Primes2,
    Primes3,
    primes_below,
    trial_divisions_all_odds,
    trial_divisions_primes,
)


def run_and_inspect(workload, n_processors=4):
    sim = build_simulation(workload, MoveThresholdPolicy(threshold=4), n_processors)
    sim.engine.run(sim.threads)
    return sim


def states_of(sim, object_name):
    region = sim.context.regions[object_name]
    states = []
    for offset in range(region.n_pages):
        page = region.vm_object.resident_page(offset)
        if page is None:
            continue
        states.append(sim.numa.directory.get(page.page_id).state)
    return states


class TestPrimesHelpers:
    def test_primes_below_known_values(self):
        assert primes_below(10) == [2, 3, 5, 7]
        assert len(primes_below(1000)) == 168
        assert primes_below(2) == []

    def test_trial_divisions_all_odds(self):
        # 9: divides by 3 -> 1 division, exits early.
        assert trial_divisions_all_odds(9) == 1
        # 25: tries 3, then 5 -> 2 divisions.
        assert trial_divisions_all_odds(25) == 2
        # 7: sqrt < 3, no divisions.
        assert trial_divisions_all_odds(7) == 0
        # 49: tries 3, 5, 7 -> 3 divisions.
        assert trial_divisions_all_odds(49) == 3

    def test_trial_divisions_primes_skips_composite_divisors(self):
        primes = primes_below(100)
        # 49: tries 3, 5, 7 -> 3 divisions (same as odds here).
        assert trial_divisions_primes(49, primes) == 3
        # 121 = 11^2: tries 3,5,7,11 -> 4 (odds would try 9 too -> 5).
        assert trial_divisions_primes(121, primes) == 4
        assert trial_divisions_all_odds(121) == 5


class TestParMult:
    def test_negligible_data_traffic(self):
        result = run_once(
            ParMult.small(), MoveThresholdPolicy(threshold=4), n_processors=4
        )
        assert result.data_refs.total() <= 2 * 8 + 4  # ~2 refs per chunk

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            ParMult(total_mults=0)


class TestGfetch:
    def test_buffer_ends_pinned_global(self):
        sim = run_and_inspect(Gfetch.small())
        assert all(
            s is PageState.GLOBAL_WRITABLE
            for s in states_of(sim, "gfetch.buffer")
        )

    def test_alpha_is_near_zero(self):
        result = run_once(
            Gfetch.small(), MoveThresholdPolicy(threshold=4), n_processors=4
        )
        assert result.measured_alpha < 0.35  # init writes loom large at small scale

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            Gfetch(total_fetches=0)


class TestIMatMult:
    def test_inputs_replicated_output_global(self):
        """'The input matrices are only read, and are thus replicated';
        the output 'is found to be shared and is placed in global'."""
        sim = run_and_inspect(IMatMult.small())
        assert all(
            s is PageState.READ_ONLY for s in states_of(sim, "matrix.A")
        )
        assert all(
            s is PageState.READ_ONLY for s in states_of(sim, "matrix.B")
        )
        c_states = states_of(sim, "matrix.C")
        assert c_states.count(PageState.GLOBAL_WRITABLE) >= len(c_states) - 1

    def test_input_pages_replicated_on_all_readers(self):
        sim = run_and_inspect(IMatMult.small(), n_processors=3)
        region = sim.context.regions["matrix.A"]
        page = region.vm_object.resident_page(0)
        entry = sim.numa.directory.get(page.page_id)
        assert len(entry.local_copies) == 3

    def test_alpha_is_high(self):
        result = run_once(
            IMatMult.small(), MoveThresholdPolicy(threshold=4), n_processors=4
        )
        assert result.measured_alpha > 0.9

    def test_rejects_tiny_matrices(self):
        with pytest.raises(ValueError):
            IMatMult(n=1)


class TestPrimes1:
    def test_stack_traffic_dominates_and_stays_local(self):
        result = run_once(
            Primes1.small(), MoveThresholdPolicy(threshold=4), n_processors=4
        )
        assert result.measured_alpha > 0.95

    def test_rejects_tiny_limit(self):
        with pytest.raises(ValueError):
            Primes1(limit=5)


class TestPrimes2:
    def test_privatizing_divisors_restores_alpha(self):
        """Section 4.2: alpha 0.66 -> 1.00 when divisors are privatized."""
        shared = run_once(
            Primes2(limit=6_000, private_divisors=False),
            MoveThresholdPolicy(threshold=4),
            n_processors=4,
        )
        private = run_once(
            Primes2(limit=6_000, private_divisors=True),
            MoveThresholdPolicy(threshold=4),
            n_processors=4,
        )
        assert private.measured_alpha > shared.measured_alpha + 0.2
        assert private.measured_alpha > 0.9
        assert shared.measured_alpha < 0.8

    def test_variant_names_differ(self):
        assert Primes2(private_divisors=False).name != Primes2().name


class TestPrimes3:
    def test_sieve_ends_pinned_global(self):
        sim = run_and_inspect(Primes3.small())
        sieve_states = states_of(sim, "sieve.bits")
        global_count = sieve_states.count(PageState.GLOBAL_WRITABLE)
        assert global_count >= len(sieve_states) - 1

    def test_alpha_is_low(self):
        result = run_once(
            Primes3.small(), MoveThresholdPolicy(threshold=4), n_processors=4
        )
        assert result.measured_alpha < 0.6

    def test_heavy_copy_traffic_before_pinning(self):
        result = run_once(
            Primes3.small(), MoveThresholdPolicy(threshold=4), n_processors=4
        )
        assert result.stats.total_page_copies() > 10


class TestFFT:
    def test_workspaces_stay_private(self):
        sim = run_and_inspect(FFT.small())
        for t in range(4):
            states = states_of(sim, f"fft.work{t}")
            assert all(s is PageState.LOCAL_WRITABLE for s in states)

    def test_alpha_is_high(self):
        result = run_once(FFT.small(), MoveThresholdPolicy(threshold=4), n_processors=4)
        assert result.measured_alpha > 0.9

    def test_size_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            FFT(size=100)


class TestPlyTrace:
    def test_queue_page_is_pinned(self):
        sim = run_and_inspect(PlyTrace.small())
        assert states_of(sim, "workpile.queue") == [PageState.GLOBAL_WRITABLE]

    def test_geometry_is_replicated(self):
        sim = run_and_inspect(PlyTrace.small())
        states = states_of(sim, "polygon.store")
        assert all(s is PageState.READ_ONLY for s in states)

    def test_packed_framebuffer_hurts_alpha(self):
        padded = run_once(
            PlyTrace(n_polygons=1200), MoveThresholdPolicy(threshold=4), n_processors=7
        )
        packed = run_once(
            PlyTrace(n_polygons=1200, padded_framebuffer=False),
            MoveThresholdPolicy(threshold=4),
            n_processors=7,
        )
        assert packed.measured_alpha < padded.measured_alpha - 0.08

    def test_rejects_empty_scene(self):
        with pytest.raises(ValueError):
            PlyTrace(n_polygons=0)
