"""Golden backward-compat: the flat ACE is byte-identical pre/post topology.

The topology layer (PR 9) must be totally inert on the paper's machine:
these hashes were captured on the commit *before* the layer existed, so
any drift — a changed float association, a new counter in a serialized
dict, a fingerprint perturbation — fails here first, with the offending
artifact named.
"""

import hashlib

import pytest

#: sha256 of ``format_table3``/``format_table4`` over the quick
#: ParMult+Gfetch evaluation, captured pre-topology.
TABLE3_SHA = "d03b66ec06c339482ffb686374aff17d2e573bd6ac3d58e5e363055574d5115d"
TABLE4_SHA = "2cac26ba87a218633c0ddf187cf92f85b5555bdea15241722260b5df5fbc3ea7"

#: sha256 of ``ChaosReport.to_json()`` for ParMult.small under the
#: transient profile, seed 0, captured pre-topology.
CHAOS_SHA = "75a9e340990d9a08233908c07486ba68c6aa4cd4f154d9c5e3be872a0bae03bd"


def _sha(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()


class TestGoldenTables:
    @pytest.fixture(scope="class")
    def evaluation(self):
        from repro.analysis.report import run_evaluation

        return run_evaluation(apps=["ParMult", "Gfetch"], quick=True)

    def test_table3_bytes_unchanged(self, evaluation):
        from repro.analysis.report import format_table3

        assert _sha(format_table3(evaluation)) == TABLE3_SHA

    def test_table4_bytes_unchanged(self, evaluation):
        from repro.analysis.report import format_table4

        assert _sha(format_table4(evaluation)) == TABLE4_SHA


class TestGoldenChaos:
    def test_chaos_summary_bytes_unchanged(self):
        from repro.faults.chaos import run_chaos
        from repro.workloads.parmult import ParMult

        report = run_chaos(ParMult.small(), "transient", seed=0)
        assert _sha(report.to_json()) == CHAOS_SHA


class TestGoldenRunOnce:
    def test_simulated_times_unchanged(self):
        from repro.core.policies import MoveThresholdPolicy
        from repro.sim.harness import run_once
        from repro.workloads.parmult import ParMult

        result = run_once(ParMult.small(), MoveThresholdPolicy())
        assert result.user_time_us == 14814.74
        assert result.system_time_us == 15431.744000000004
        assert result.rounds == 5
