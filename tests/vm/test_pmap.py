"""The pmap layer: the paper's three interface extensions."""

import pytest

from repro.core.state import AccessKind, PageState
from repro.errors import ProtocolError
from repro.machine.memory import FrameKind
from repro.machine.protection import (
    PROT_READ,
    PROT_READ_WRITE,
    Protection,
)
from repro.vm.vm_object import shared_object
from tests.conftest import make_rig


def setup_page(rig, pages=2):
    region = rig.space.map_object(shared_object("data", pages))
    return region


class TestPmapEnter:
    def test_min_prot_read_maps_read_only(self, rig):
        """Extension 2: strictest permission that resolves the fault."""
        region = setup_page(rig)
        page = rig.pool.resident_or_allocate(region.vm_object, 0)
        rig.pmap.pmap_enter(
            region.vpage_at(0), page, PROT_READ, PROT_READ_WRITE, cpu=0
        )
        mapping = rig.machine.cpu(0).mmu.lookup(region.vpage_at(0))
        assert mapping.protection == PROT_READ

    def test_min_prot_above_max_rejected(self, rig):
        region = setup_page(rig)
        page = rig.pool.resident_or_allocate(region.vm_object, 0)
        with pytest.raises(ProtocolError):
            rig.pmap.pmap_enter(
                region.vpage_at(0), page, PROT_READ_WRITE, PROT_READ, cpu=0
            )

    def test_target_processor_argument(self, rig):
        """Extension 3: mappings appear only on the faulting processor."""
        region = setup_page(rig)
        page = rig.pool.resident_or_allocate(region.vm_object, 0)
        rig.pmap.pmap_enter(
            region.vpage_at(0), page, PROT_READ, PROT_READ_WRITE, cpu=2
        )
        assert rig.machine.cpu(2).mmu.lookup(region.vpage_at(0)) is not None
        for cpu in (0, 1, 3):
            assert rig.machine.cpu(cpu).mmu.lookup(region.vpage_at(0)) is None

    def test_returns_chosen_frame(self, rig):
        region = setup_page(rig)
        page = rig.pool.resident_or_allocate(region.vm_object, 0)
        frame = rig.pmap.pmap_enter(
            region.vpage_at(0), page, PROT_READ_WRITE, PROT_READ_WRITE, cpu=1
        )
        assert frame.kind is FrameKind.LOCAL and frame.node == 1


class TestPmapFreePage:
    def test_free_page_returns_tag_and_sync_completes(self, rig):
        """Extension 1: split lazy free."""
        region = setup_page(rig)
        rig.faults.handle(0, region.vpage_at(0), AccessKind.WRITE)
        page = region.vm_object.resident_page(0)
        region.vm_object.detach(0)
        tag = rig.pmap.pmap_free_page(page, cpu=0)
        assert not tag.completed
        assert rig.machine.memory.local_in_use(0) == 1
        rig.pmap.pmap_free_page_sync(tag, cpu=0)
        assert tag.completed
        assert rig.machine.memory.local_in_use(0) == 0

    def test_free_page_sync_is_idempotent(self, rig):
        region = setup_page(rig)
        rig.faults.handle(0, region.vpage_at(0), AccessKind.WRITE)
        page = region.vm_object.resident_page(0)
        region.vm_object.detach(0)
        tag = rig.pmap.pmap_free_page(page, cpu=0)
        rig.pmap.pmap_free_page_sync(tag, cpu=0)
        rig.pmap.pmap_free_page_sync(tag, cpu=0)
        assert rig.numa.stats.free_syncs == 1


class TestPmapProtectAndRemove:
    def test_protect_downgrades_and_updates_directory(self, rig):
        region = setup_page(rig)
        rig.faults.handle(0, region.vpage_at(0), AccessKind.WRITE)
        rig.pmap.pmap_protect(region.vpage_at(0), PROT_READ, cpu=0)
        mapping = rig.machine.cpu(0).mmu.lookup(region.vpage_at(0))
        assert mapping.protection == PROT_READ
        page = region.vm_object.resident_page(0)
        entry = rig.numa.directory.get(page.page_id)
        assert not entry.mappings[0].protection.writable
        entry.check_invariants()

    def test_protect_upgrade_rejected(self, rig):
        region = setup_page(rig)
        rig.faults.handle(0, region.vpage_at(0), AccessKind.READ)
        with pytest.raises(ProtocolError):
            rig.pmap.pmap_protect(region.vpage_at(0), PROT_READ_WRITE, cpu=0)

    def test_protect_to_none_removes(self, rig):
        region = setup_page(rig)
        rig.faults.handle(0, region.vpage_at(0), AccessKind.WRITE)
        rig.pmap.pmap_protect(region.vpage_at(0), Protection.NONE, cpu=0)
        assert rig.machine.cpu(0).mmu.lookup(region.vpage_at(0)) is None

    def test_protect_missing_mapping_is_noop(self, rig):
        rig.pmap.pmap_protect(0x123, PROT_READ, cpu=0)

    def test_remove_drops_one_cpus_mapping(self, rig):
        region = setup_page(rig)
        rig.faults.handle(0, region.vpage_at(0), AccessKind.READ)
        rig.faults.handle(1, region.vpage_at(0), AccessKind.READ)
        rig.pmap.pmap_remove(region.vpage_at(0), cpu=0)
        assert rig.machine.cpu(0).mmu.lookup(region.vpage_at(0)) is None
        assert rig.machine.cpu(1).mmu.lookup(region.vpage_at(0)) is not None
        page = region.vm_object.resident_page(0)
        rig.numa.directory.get(page.page_id).check_invariants()

    def test_remove_missing_is_noop(self, rig):
        rig.pmap.pmap_remove(0x123, cpu=0)

    def test_remove_all_drops_every_mapping_but_keeps_state(self, rig):
        region = setup_page(rig)
        for cpu in range(3):
            rig.faults.handle(cpu, region.vpage_at(0), AccessKind.READ)
        page = region.vm_object.resident_page(0)
        rig.pmap.pmap_remove_all(page, cpu=0)
        for cpu in range(3):
            assert rig.machine.cpu(cpu).mmu.lookup(region.vpage_at(0)) is None
        entry = rig.numa.directory.get(page.page_id)
        assert entry.state is PageState.READ_ONLY  # copies survive
        assert len(entry.local_copies) == 3

    def test_refault_after_remove_all(self, rig):
        """Dropped mappings are re-entered by the normal fault path."""
        region = setup_page(rig)
        rig.faults.handle(0, region.vpage_at(0), AccessKind.WRITE)
        page = region.vm_object.resident_page(0)
        rig.pmap.pmap_remove_all(page, cpu=0)
        frame = rig.faults.handle(0, region.vpage_at(0), AccessKind.WRITE)
        assert frame.node == 0
