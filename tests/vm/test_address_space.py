"""Address spaces: region mapping, resolution, faults on holes."""

import pytest

from repro.errors import ConfigurationError
from repro.machine.protection import PROT_READ, PROT_READ_WRITE
from repro.vm.address_space import AddressSpace, SegmentationFault
from repro.vm.vm_object import shared_object, text_object


class TestMapping:
    def test_sequential_mapping_leaves_guard_gaps(self):
        space = AddressSpace()
        a = space.map_object(shared_object("a", 2))
        b = space.map_object(shared_object("b", 2))
        assert b.start_vpage > a.end_vpage  # at least one guard page

    def test_explicit_placement(self):
        space = AddressSpace()
        region = space.map_object(shared_object("a", 2), at_vpage=0x500)
        assert region.start_vpage == 0x500

    def test_overlap_rejected(self):
        space = AddressSpace()
        space.map_object(shared_object("a", 4), at_vpage=0x500)
        with pytest.raises(ConfigurationError):
            space.map_object(shared_object("b", 4), at_vpage=0x502)

    def test_double_mapping_same_object_rejected(self):
        space = AddressSpace()
        obj = shared_object("a", 1)
        space.map_object(obj)
        with pytest.raises(ConfigurationError):
            space.map_object(obj)

    def test_region_of(self):
        space = AddressSpace()
        obj = shared_object("a", 1)
        region = space.map_object(obj)
        assert space.region_of(obj) is region

    def test_region_of_unmapped_rejected(self):
        with pytest.raises(ConfigurationError):
            AddressSpace().region_of(shared_object("a", 1))

    def test_regions_listing(self):
        space = AddressSpace()
        space.map_object(shared_object("a", 1))
        space.map_object(shared_object("b", 1))
        assert [r.vm_object.name for r in space.regions] == ["a", "b"]


class TestResolution:
    def test_resolve_returns_region_and_offset(self):
        space = AddressSpace()
        region = space.map_object(shared_object("a", 4))
        found, offset = space.resolve(region.start_vpage + 3)
        assert found is region
        assert offset == 3

    def test_resolve_hole_raises_segfault(self):
        space = AddressSpace()
        region = space.map_object(shared_object("a", 2))
        with pytest.raises(SegmentationFault):
            space.resolve(region.end_vpage)  # the guard page

    def test_resolve_unmapped_low_memory(self):
        with pytest.raises(SegmentationFault):
            AddressSpace().resolve(0)


class TestVMRegion:
    def test_geometry(self):
        space = AddressSpace()
        region = space.map_object(shared_object("a", 3), at_vpage=100)
        assert region.n_pages == 3
        assert region.end_vpage == 103
        assert list(region.vpages()) == [100, 101, 102]
        assert region.contains(102) and not region.contains(103)

    def test_vpage_at_and_offset_of_roundtrip(self):
        space = AddressSpace()
        region = space.map_object(shared_object("a", 3), at_vpage=100)
        for offset in range(3):
            assert region.offset_of(region.vpage_at(offset)) == offset

    def test_vpage_at_out_of_range(self):
        space = AddressSpace()
        region = space.map_object(shared_object("a", 3))
        with pytest.raises(ConfigurationError):
            region.vpage_at(3)

    def test_offset_of_outside_rejected(self):
        space = AddressSpace()
        region = space.map_object(shared_object("a", 3), at_vpage=100)
        with pytest.raises(ConfigurationError):
            region.offset_of(99)

    def test_max_prot_follows_object_writability(self):
        space = AddressSpace()
        writable = space.map_object(shared_object("a", 1))
        readonly = space.map_object(text_object("b", 1))
        assert writable.max_prot == PROT_READ_WRITE
        assert readonly.max_prot == PROT_READ
