"""Pageout, backing store, and footnote 4's pin reset."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.numa_manager import NUMAManager
from repro.core.policies import MoveThresholdPolicy, PragmaPolicy
from repro.core.state import AccessKind, PageState
from repro.machine.config import MachineConfig
from repro.machine.machine import Machine
from repro.vm.address_space import AddressSpace
from repro.vm.fault import FaultHandler
from repro.vm.page_pool import PagePool
from repro.vm.pageout import BackingStore, PageoutDaemon
from repro.vm.pmap import ACEPmap
from repro.vm.vm_object import kernel_object, shared_object


def paged_rig(n_processors=2, global_pages=8, io_us=1000.0):
    config = MachineConfig(
        n_processors=n_processors,
        local_pages_per_cpu=16,
        global_pages=global_pages,
    )
    machine = Machine(config)
    numa = NUMAManager(machine, PragmaPolicy(MoveThresholdPolicy(threshold=4)))
    store = BackingStore()
    pool = PagePool(numa, backing_store=store)
    pmap = ACEPmap(numa)
    space = AddressSpace()
    faults = FaultHandler(machine, space, pool, pmap)
    daemon = PageoutDaemon(pool, store, io_us=io_us)
    return machine, numa, pool, space, faults, daemon, store


class TestPageOutAndIn:
    def test_contents_survive_the_round_trip(self):
        machine, numa, pool, space, faults, daemon, store = paged_rig()
        region = space.map_object(shared_object("d", 2))
        frame = faults.handle(0, region.vpage_at(0), AccessKind.WRITE)
        machine.memory.write_token(frame, 77)
        page = region.vm_object.resident_page(0)
        daemon.page_out(page, cpu=0)
        assert store.pageouts == 1
        # Next access faults the page back in with its old contents.
        frame = faults.handle(1, region.vpage_at(0), AccessKind.READ)
        assert machine.memory.read_token(frame) == 77
        assert store.pageins == 1

    def test_paged_in_page_is_not_rezeroed(self):
        machine, numa, pool, space, faults, daemon, store = paged_rig()
        region = space.map_object(shared_object("d", 1))
        frame = faults.handle(0, region.vpage_at(0), AccessKind.WRITE)
        machine.memory.write_token(frame, 5)
        daemon.page_out(region.vm_object.resident_page(0), cpu=0)
        page = pool.resident_or_allocate(region.vm_object, 0)
        assert page.restored
        assert not page.zero_fill

    def test_dirty_local_copy_is_what_gets_stored(self):
        """Pageout must take the authoritative (local) contents."""
        machine, numa, pool, space, faults, daemon, store = paged_rig()
        region = space.map_object(shared_object("d", 1))
        frame = faults.handle(1, region.vpage_at(0), AccessKind.WRITE)
        assert frame.kind.value == "local"
        machine.memory.write_token(frame, 42)  # dirty in cpu1's memory
        daemon.page_out(region.vm_object.resident_page(0), cpu=0)
        assert store.peek(region.vm_object, 0) == 42

    def test_pageout_charges_io_as_system_time(self):
        machine, numa, pool, space, faults, daemon, store = paged_rig(
            io_us=9_999.0
        )
        region = space.map_object(shared_object("d", 1))
        faults.handle(0, region.vpage_at(0), AccessKind.WRITE)
        before = machine.cpu(0).system_time_us
        daemon.page_out(region.vm_object.resident_page(0), cpu=0)
        assert machine.cpu(0).system_time_us - before >= 9_999.0

    def test_pageout_drops_all_mappings(self):
        machine, numa, pool, space, faults, daemon, store = paged_rig()
        region = space.map_object(shared_object("d", 1))
        faults.handle(0, region.vpage_at(0), AccessKind.READ)
        faults.handle(1, region.vpage_at(0), AccessKind.READ)
        daemon.page_out(region.vm_object.resident_page(0), cpu=0)
        for cpu in (0, 1):
            assert machine.cpu(cpu).mmu.lookup(region.vpage_at(0)) is None


class TestFootnote4:
    def test_pageout_resets_the_pin(self):
        """A pinning decision is reconsidered only when the page is
        'paged out and back in'."""
        machine, numa, pool, space, faults, daemon, store = paged_rig()
        region = space.map_object(shared_object("d", 1))
        for i in range(12):
            faults.handle(i % 2, region.vpage_at(0), AccessKind.WRITE)
        page = region.vm_object.resident_page(0)
        base_policy = numa.policy.base  # PragmaPolicy wraps the threshold
        assert base_policy.is_pinned(page.page_id)
        daemon.page_out(page, cpu=0)
        frame = faults.handle(0, region.vpage_at(0), AccessKind.WRITE)
        assert frame.kind.value == "local"  # cacheable again
        new_page = region.vm_object.resident_page(0)
        assert not base_policy.is_pinned(new_page.page_id)


class TestDaemon:
    def test_reclaim_until_target(self):
        machine, numa, pool, space, faults, daemon, store = paged_rig(
            global_pages=6
        )
        region = space.map_object(shared_object("d", 6))
        for offset in range(6):
            faults.handle(0, region.vpage_at(offset), AccessKind.WRITE)
        assert machine.memory.global_available() == 0
        written = daemon.reclaim(target_free=3, cpu=0)
        assert written == 3
        assert machine.memory.global_available() >= 3

    def test_reclaim_is_fifo(self):
        machine, numa, pool, space, faults, daemon, store = paged_rig()
        region = space.map_object(shared_object("d", 3))
        for offset in range(3):
            faults.handle(0, region.vpage_at(offset), AccessKind.WRITE)
        daemon.reclaim(target_free=6, cpu=0)
        # Oldest (offset 0) went out first.
        assert store.peek(region.vm_object, 0) is not None

    def test_wired_pages_are_never_paged_out(self):
        machine, numa, pool, space, faults, daemon, store = paged_rig(
            global_pages=4
        )
        kernel = space.map_object(kernel_object("kdata", 2))
        data = space.map_object(shared_object("d", 2))
        for offset in range(2):
            faults.handle(0, kernel.vpage_at(offset), AccessKind.WRITE)
            faults.handle(0, data.vpage_at(offset), AccessKind.WRITE)
        written = daemon.reclaim(target_free=4, cpu=0)
        assert written == 2  # only the unwired pages
        assert kernel.vm_object.resident_page(0) is not None
        assert kernel.vm_object.resident_page(1) is not None

    def test_reclaim_stops_when_nothing_evictable(self):
        machine, numa, pool, space, faults, daemon, store = paged_rig()
        kernel = space.map_object(kernel_object("kdata", 2))
        faults.handle(0, kernel.vpage_at(0), AccessKind.WRITE)
        assert daemon.reclaim(target_free=999, cpu=0) == 0

    def test_io_cost_validation(self):
        machine, numa, pool, space, faults, daemon, store = paged_rig()
        with pytest.raises(Exception):
            PageoutDaemon(pool, store, io_us=-1.0)


class TestKernelObjects:
    def test_kernel_pages_stay_global(self):
        machine, numa, pool, space, faults, daemon, store = paged_rig()
        region = space.map_object(kernel_object("kdata", 1))
        frame = faults.handle(1, region.vpage_at(0), AccessKind.WRITE)
        assert frame.kind.value == "global"
        page = region.vm_object.resident_page(0)
        entry = numa.directory.get(page.page_id)
        assert entry.state is PageState.GLOBAL_WRITABLE


class TestPageoutProperties:
    @given(
        ops=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=1),  # cpu
                st.integers(min_value=0, max_value=2),  # offset
                st.booleans(),  # write?
                st.booleans(),  # page out after?
            ),
            max_size=40,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_coherence_across_pageouts(self, ops):
        machine, numa, pool, space, faults, daemon, store = paged_rig(
            global_pages=16
        )
        region = space.map_object(shared_object("d", 3))
        token = 1
        last = {}
        for cpu, offset, is_write, out_after in ops:
            kind = AccessKind.WRITE if is_write else AccessKind.READ
            frame = faults.handle(cpu, region.vpage_at(offset), kind)
            if is_write:
                machine.memory.write_token(frame, token)
                last[offset] = token
                token += 1
            else:
                assert machine.memory.read_token(frame) == last.get(offset, 0)
            numa.check_all_invariants()
            if out_after:
                page = region.vm_object.resident_page(offset)
                if page is not None:
                    daemon.page_out(page, cpu)
