"""VM objects: attributes, residency bookkeeping, factory helpers."""

import pytest

from repro.core.policies.pragma import Pragma
from repro.errors import ConfigurationError
from repro.vm.vm_object import (
    Sharing,
    VMObject,
    shared_object,
    stack_object,
    text_object,
)


class TestVMObject:
    def test_defaults(self):
        obj = VMObject(name="x", n_pages=2)
        assert obj.writable and obj.zero_fill
        assert obj.sharing is Sharing.PRIVATE
        assert obj.pragma is None

    def test_rejects_empty_objects(self):
        with pytest.raises(ConfigurationError):
            VMObject(name="x", n_pages=0)

    def test_read_only_zero_fill_is_normalized(self):
        """A read-only zero-fill object would be eternally zero."""
        obj = VMObject(name="x", n_pages=1, writable=False, zero_fill=True)
        assert not obj.zero_fill

    def test_writable_data_follows_writable(self):
        assert VMObject(name="x", n_pages=1, writable=True).writable_data
        assert not VMObject(name="x", n_pages=1, writable=False).writable_data

    def test_object_ids_are_unique(self):
        a = VMObject(name="a", n_pages=1)
        b = VMObject(name="a", n_pages=1)
        assert a.object_id != b.object_id


class TestResidency:
    def test_attach_and_resident_page(self):
        obj = VMObject(name="x", n_pages=2)
        marker = object()
        obj.attach(1, marker)  # type: ignore[arg-type]
        assert obj.resident_page(1) is marker
        assert obj.resident_page(0) is None

    def test_attach_out_of_range_rejected(self):
        obj = VMObject(name="x", n_pages=2)
        with pytest.raises(ConfigurationError):
            obj.attach(2, object())  # type: ignore[arg-type]

    def test_double_attach_rejected(self):
        obj = VMObject(name="x", n_pages=2)
        obj.attach(0, object())  # type: ignore[arg-type]
        with pytest.raises(ConfigurationError):
            obj.attach(0, object())  # type: ignore[arg-type]

    def test_detach(self):
        obj = VMObject(name="x", n_pages=1)
        marker = object()
        obj.attach(0, marker)  # type: ignore[arg-type]
        assert obj.detach(0) is marker
        assert obj.resident_page(0) is None

    def test_detach_missing_rejected(self):
        with pytest.raises(ConfigurationError):
            VMObject(name="x", n_pages=1).detach(0)


class TestFactories:
    def test_text_object(self):
        obj = text_object("code", 3)
        assert not obj.writable and not obj.zero_fill
        assert obj.sharing is Sharing.READ_MOSTLY

    def test_stack_object(self):
        obj = stack_object("stk", 2, owner_thread=5)
        assert obj.writable and obj.zero_fill
        assert obj.owner_thread == 5
        assert obj.sharing is Sharing.PRIVATE

    def test_shared_object(self):
        obj = shared_object("shm", 2)
        assert obj.sharing is Sharing.SHARED
        assert obj.writable and obj.zero_fill

    def test_pragma_carried(self):
        obj = VMObject(name="x", n_pages=1, pragma=Pragma.NONCACHEABLE)
        assert obj.pragma is Pragma.NONCACHEABLE
