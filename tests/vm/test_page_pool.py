"""The fixed-size logical page pool and its lazy free path."""

import pytest

from repro.core.numa_manager import NUMAManager
from repro.core.policies import MoveThresholdPolicy
from repro.core.state import AccessKind
from repro.errors import OutOfMemoryError
from repro.machine.config import MachineConfig
from repro.machine.machine import Machine
from repro.vm.page_pool import PagePool
from repro.vm.vm_object import shared_object
from tests.conftest import make_rig


def make_pool(global_pages: int = 4):
    config = MachineConfig(
        n_processors=2, local_pages_per_cpu=8, global_pages=global_pages
    )
    machine = Machine(config)
    numa = NUMAManager(machine, MoveThresholdPolicy(threshold=4))
    return PagePool(numa), machine


class TestAllocation:
    def test_pool_capacity_equals_global_memory(self):
        """Section 2.1: the page pool size is fixed at boot time."""
        pool, machine = make_pool(global_pages=4)
        assert pool.capacity == 4

    def test_allocate_attaches_to_object(self):
        pool, _ = make_pool()
        obj = shared_object("x", 2)
        page = pool.allocate(obj, 1)
        assert obj.resident_page(1) is page
        assert page.offset == 1
        assert pool.live_pages == 1

    def test_pool_exhausts_at_capacity(self):
        pool, _ = make_pool(global_pages=2)
        obj = shared_object("x", 4)
        pool.allocate(obj, 0)
        pool.allocate(obj, 1)
        with pytest.raises(OutOfMemoryError):
            pool.allocate(obj, 2)

    def test_page_ids_never_reused(self):
        pool, _ = make_pool()
        obj = shared_object("x", 2)
        first = pool.allocate(obj, 0)
        pool.free(first)
        second = pool.allocate(obj, 0)
        assert second.page_id != first.page_id

    def test_resident_or_allocate(self):
        pool, _ = make_pool()
        obj = shared_object("x", 1)
        page = pool.resident_or_allocate(obj, 0)
        assert pool.resident_or_allocate(obj, 0) is page
        assert pool.live_pages == 1

    def test_allocated_pages_register_with_numa(self):
        pool, _ = make_pool()
        obj = shared_object("x", 1)
        page = pool.allocate(obj, 0)
        assert page.page_id in pool._numa.directory  # noqa: SLF001


class TestLazyFree:
    def test_free_detaches_and_recycles_global_frame(self):
        pool, machine = make_pool(global_pages=1)
        obj = shared_object("x", 2)
        page = pool.allocate(obj, 0)
        pool.free(page)
        assert obj.resident_page(0) is None
        # The global frame is back: a new page can be allocated.
        pool.allocate(obj, 1)

    def test_cleanup_is_deferred_until_next_allocation(self):
        rig = make_rig(global_pages=8)
        region = rig.space.map_object(shared_object("x", 3))
        rig.faults.handle(0, region.vpage_at(0), AccessKind.WRITE)
        page = region.vm_object.resident_page(0)
        rig.pool.free(page, cpu=0)
        assert rig.pool.pending_cleanups == 1
        assert rig.machine.memory.local_in_use(0) == 1  # still held
        rig.faults.handle(0, region.vpage_at(1), AccessKind.WRITE)
        assert rig.pool.pending_cleanups == 0

    def test_drain_cleanups(self):
        rig = make_rig()
        region = rig.space.map_object(shared_object("x", 3))
        for offset in range(3):
            rig.faults.handle(0, region.vpage_at(offset), AccessKind.WRITE)
        for offset in range(3):
            rig.pool.free(region.vm_object.resident_page(offset), cpu=0)
        assert rig.pool.drain_cleanups(cpu=0) == 3
        assert rig.machine.memory.local_in_use(0) == 0

    def test_exhaustion_error_carries_structured_pool_view(self):
        """OutOfMemoryError is diagnosable from fields, not the message."""
        pool, _ = make_pool(global_pages=2)
        obj = shared_object("x", 4)
        pool.allocate(obj, 0)
        pool.allocate(obj, 1)
        with pytest.raises(OutOfMemoryError) as excinfo:
            pool.allocate(obj, 2)
        err = excinfo.value
        assert err.capacity == 2
        assert err.in_use == 2
        assert err.where == "page-pool"
        assert err.details["pending_cleanups"] == 0
        # The underlying frame-pool failure rides along, structured too.
        assert err.details["frame_pool"]["t"] == "out_of_memory"
        record = err.as_record()
        assert record["capacity"] == 2
        assert record["where"] == "page-pool"

    def test_allocation_succeeds_after_lazy_free_drains(self):
        """Freeing a page un-exhausts the pool on the next allocation."""
        pool, _ = make_pool(global_pages=2)
        obj = shared_object("x", 4)
        survivor = pool.allocate(obj, 0)
        doomed = pool.allocate(obj, 1)
        with pytest.raises(OutOfMemoryError):
            pool.allocate(obj, 2)
        pool.free(doomed)
        page = pool.allocate(obj, 2)
        assert page.offset == 2
        assert pool.live_pages == 2
        assert obj.resident_page(0) is survivor

    def test_exhaustion_drains_cleanups_before_failing(self):
        pool, _ = make_pool(global_pages=2)
        obj = shared_object("x", 4)
        a = pool.allocate(obj, 0)
        pool.allocate(obj, 1)
        pool.free(a)
        # Global frame freed eagerly, so this succeeds without error.
        pool.allocate(obj, 2)
        assert pool.live_pages == 2
