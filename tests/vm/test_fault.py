"""The machine-independent fault handler."""

import pytest

from repro.core.state import AccessKind
from repro.vm.address_space import SegmentationFault
from repro.vm.fault import ProtectionViolation
from repro.vm.vm_object import shared_object, text_object
from tests.conftest import make_rig


class TestFaultHandling:
    def test_fault_allocates_the_backing_page(self, rig):
        region = rig.space.map_object(shared_object("d", 2))
        assert region.vm_object.resident_page(1) is None
        rig.faults.handle(0, region.vpage_at(1), AccessKind.READ)
        assert region.vm_object.resident_page(1) is not None

    def test_fault_charges_overhead_as_system_time(self, rig):
        region = rig.space.map_object(shared_object("d", 1))
        rig.faults.handle(0, region.vpage_at(0), AccessKind.READ)
        assert (
            rig.machine.cpu(0).system_time_us
            >= rig.machine.timing.fault_overhead_us
        )

    def test_fault_counter(self, rig):
        region = rig.space.map_object(shared_object("d", 2))
        rig.faults.handle(0, region.vpage_at(0), AccessKind.READ)
        rig.faults.handle(0, region.vpage_at(1), AccessKind.READ)
        assert rig.faults.fault_count == 2

    def test_segfault_on_unmapped_address(self, rig):
        with pytest.raises(SegmentationFault):
            rig.faults.handle(0, 0x9999, AccessKind.READ)

    def test_write_to_read_only_region_rejected(self, rig):
        region = rig.space.map_object(text_object("code", 1))
        with pytest.raises(ProtectionViolation):
            rig.faults.handle(0, region.vpage_at(0), AccessKind.WRITE)

    def test_read_of_read_only_region_allowed(self, rig):
        region = rig.space.map_object(text_object("code", 1))
        frame = rig.faults.handle(0, region.vpage_at(0), AccessKind.READ)
        assert frame.node == 0

    def test_accessors(self, rig):
        assert rig.faults.space is rig.space
        assert rig.faults.pool is rig.pool
        assert rig.faults.pmap is rig.pmap
