"""pmap_zero_page and pmap_copy_page (the remaining Mach pmap ops)."""

import pytest

from repro.core.state import AccessKind, PageState
from repro.errors import ProtocolError
from repro.vm.vm_object import shared_object
from tests.conftest import make_rig


def resident(rig, region, offset=0):
    return region.vm_object.resident_page(offset)


class TestPmapZeroPage:
    def test_zero_on_untouched_page_is_deferred(self, rig):
        region = rig.space.map_object(shared_object("d", 1))
        page = rig.pool.resident_or_allocate(region.vm_object, 0)
        before = rig.machine.cpu(0).system_time_us
        rig.pmap.pmap_zero_page(page, cpu=0)
        assert rig.machine.cpu(0).system_time_us == before  # lazy: free
        entry = rig.numa.directory.get(page.page_id)
        assert entry.state is PageState.UNTOUCHED

    def test_zero_on_resident_page_clears_authoritative_copy(self, rig):
        region = rig.space.map_object(shared_object("d", 1))
        frame = rig.faults.handle(1, region.vpage_at(0), AccessKind.WRITE)
        rig.machine.memory.write_token(frame, 9)
        page = resident(rig, region)
        rig.pmap.pmap_zero_page(page, cpu=1)
        assert rig.machine.memory.read_token(frame) == 0

    def test_zero_charges_system_time(self, rig):
        region = rig.space.map_object(shared_object("d", 1))
        rig.faults.handle(0, region.vpage_at(0), AccessKind.WRITE)
        before = rig.machine.cpu(0).system_time_us
        rig.pmap.pmap_zero_page(resident(rig, region), cpu=0)
        assert rig.machine.cpu(0).system_time_us > before


class TestPmapCopyPage:
    def test_copies_authoritative_content(self, rig):
        region = rig.space.map_object(shared_object("d", 2))
        frame = rig.faults.handle(1, region.vpage_at(0), AccessKind.WRITE)
        rig.machine.memory.write_token(frame, 33)
        source = resident(rig, region, 0)
        destination = rig.pool.resident_or_allocate(region.vm_object, 1)
        rig.pmap.pmap_copy_page(source, destination, cpu=0)
        assert (
            rig.machine.memory.read_token(destination.global_frame) == 33
        )

    def test_destination_becomes_initialized(self, rig):
        region = rig.space.map_object(shared_object("d", 2))
        rig.faults.handle(0, region.vpage_at(0), AccessKind.WRITE)
        source = resident(rig, region, 0)
        destination = rig.pool.resident_or_allocate(region.vm_object, 1)
        rig.pmap.pmap_copy_page(source, destination, cpu=0)
        entry = rig.numa.directory.get(destination.page_id)
        assert entry.state is PageState.GLOBAL_WRITABLE
        # A later read sees the copied data through the normal path.
        frame = rig.faults.handle(2, region.vpage_at(1), AccessKind.READ)
        assert rig.machine.memory.read_token(frame) == (
            rig.machine.memory.read_token(source.global_frame)
        )

    def test_untouched_source_copies_zeros(self, rig):
        region = rig.space.map_object(shared_object("d", 2))
        source = rig.pool.resident_or_allocate(region.vm_object, 0)
        destination = rig.pool.resident_or_allocate(region.vm_object, 1)
        rig.pmap.pmap_copy_page(source, destination, cpu=0)
        assert rig.machine.memory.read_token(destination.global_frame) == 0

    def test_cached_destination_rejected(self, rig):
        region = rig.space.map_object(shared_object("d", 2))
        rig.faults.handle(0, region.vpage_at(0), AccessKind.WRITE)
        rig.faults.handle(0, region.vpage_at(1), AccessKind.WRITE)
        with pytest.raises(ProtocolError):
            rig.pmap.pmap_copy_page(
                resident(rig, region, 0), resident(rig, region, 1), cpu=0
            )

    def test_copy_charges_system_time(self, rig):
        region = rig.space.map_object(shared_object("d", 2))
        rig.faults.handle(0, region.vpage_at(0), AccessKind.WRITE)
        destination = rig.pool.resident_or_allocate(region.vm_object, 1)
        before = rig.machine.cpu(0).system_time_us
        rig.pmap.pmap_copy_page(
            resident(rig, region, 0), destination, cpu=0
        )
        assert rig.machine.cpu(0).system_time_us > before
