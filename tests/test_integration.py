"""End-to-end integration: the whole stack exercised together."""

import pytest

from repro import (
    MoveThresholdPolicy,
    ace_config,
    measure_placement,
    run_once,
    solve_model,
)
from repro.analysis import (
    TraceCollector,
    advise,
    analyze,
    analyze_bus,
    compare_to_optimal,
    speedup_curve,
)
from repro.analysis.optimal import protocol_cost_us
from repro.core.policies import HomeNodePolicy, PragmaPolicy
from repro.core.policies.pragma import Pragma
from repro.machine.timing import TimingModel
from repro.sim.harness import build_simulation
from repro.workloads import IMatMult, Primes3, small_workloads
from repro.workloads.lopsided import LopsidedSharing


class TestFullPipeline:
    def test_measure_solve_trace_advise_bus_optimal_in_one_run(self):
        """One run feeds every analysis without re-simulation."""
        config = ace_config(4)
        trace = TraceCollector()
        result = run_once(
            Primes3.small(),
            MoveThresholdPolicy(threshold=4),
            n_processors=4,
            observer=trace,
        )
        # False-sharing classification.
        sharing = analyze(trace)
        assert sharing.writably_shared_pages
        # Layout advice.
        layout = advise(trace)
        assert layout.advice
        # Bus utilization.
        bus = analyze_bus(result, config)
        assert 0.0 <= bus.utilization < 1.0
        # Optimal comparison.
        timing = TimingModel(config.timing, config.page_size_words)
        comparison = compare_to_optimal(
            trace, timing, protocol_cost_us(result.stats, timing)
        )
        assert comparison.ratio >= 0.99

    def test_model_roundtrip_on_a_real_measurement(self):
        measurement = measure_placement(IMatMult.small(), n_processors=4)
        params = solve_model(measurement)
        assert params.gamma >= 0.99
        if params.alpha is not None:
            assert 0.0 <= params.alpha <= 1.01

    def test_every_application_final_state_is_consistent(self):
        for name, workload in small_workloads().items():
            sim = build_simulation(workload, MoveThresholdPolicy(threshold=4), 4)
            sim.engine.run(sim.threads)
            sim.numa.check_all_invariants()
            # No frame leaks relative to live pages.
            live_global = sim.machine.memory.global_in_use()
            assert live_global == sim.pool.live_pages, name

    def test_mixed_policies_and_pragmas_coexist(self):
        """Pragma'd, remote, and automatic regions in one address space."""
        policy = HomeNodePolicy(PragmaPolicy(MoveThresholdPolicy(threshold=4)))
        sim = build_simulation(
            LopsidedSharing(dominant_share=0.8, pragma=Pragma.REMOTE),
            policy,
            n_processors=4,
        )
        sim.engine.run(sim.threads)
        sim.numa.check_all_invariants()
        assert sim.numa.stats.remote_mappings > 0

    def test_speedup_and_placement_agree(self):
        """γ from the model matches the speedup shortfall direction."""
        curve = speedup_curve(Primes3.small, processors=(1, 4))
        measurement = measure_placement(Primes3.small(), n_processors=4)
        params = solve_model(measurement)
        # gamma > 1 implies sublinear speedup.
        assert params.gamma > 1.05
        assert curve.point(4).speedup < 4.0 / 1.05


class TestDeterminismAcrossTheBoard:
    @pytest.mark.parametrize("name", sorted(small_workloads()))
    def test_two_identical_runs_agree_exactly(self, name):
        workload = small_workloads()[name]
        first = run_once(workload, MoveThresholdPolicy(threshold=4), n_processors=4)
        second = run_once(workload, MoveThresholdPolicy(threshold=4), n_processors=4)
        assert first.user_time_us == second.user_time_us
        assert first.stats.as_dict() == second.stats.as_dict()
