"""The cache-backed dataset layer and report generation.

The system-of-record property under test: a warmed ``.repro-cache/``
is sufficient to regenerate every table and figure with zero
re-execution, every artifact footnoted with its contributing spec
fingerprints — and regeneration is byte-identical for an identical
cache.
"""

import pytest

from repro.analysis.cachereport import (
    CacheDataset,
    chaos_fan_section,
    derive_row,
    evaluation_from_dataset,
    footnote,
    missing_lines,
    placement_triples,
    policy_tournament_section,
    summary_section,
    table3_frame,
    table4_frame,
    threshold_versus_section,
)
from repro.analysis.repro_report import emit_tables, generate_cache_report
from repro.exp.cache import CACHE_SCHEMA, ResultCache
from repro.exp.grid import flatten, policy_tournament
from repro.exp.spec import RunSpec

APPS = ["ParMult", "FFT"]  # FFT also appears in Table 4
GRID = dict(n_processors=2, threshold=4, quick=True)


@pytest.fixture(scope="module")
def cache_root(tmp_path_factory):
    """A cache warmed with both placement triples plus a chaos fan."""
    root = tmp_path_factory.mktemp("cache")
    cache = ResultCache(root)
    for spec in flatten(placement_triples(APPS, **GRID)):
        cache.put(spec, spec.execute())
    for seed in (0, 1):
        spec = RunSpec(
            workload="ParMult",
            quick=True,
            n_processors=2,
            fault_profile="transient",
            fault_seed=seed,
            check_invariants=False,
        )
        cache.put(spec, spec.execute())
    return root


@pytest.fixture
def dataset(cache_root):
    return CacheDataset.load(cache_root)


class TestDeriveRow:
    def test_run_entry(self, dataset):
        entry = next(
            e for e in dataset.entries if e.outcome.kind == "run"
        )
        row = derive_row(entry)
        assert row["fingerprint"] == entry.fingerprint
        assert row["kind"] == "run"
        assert row["workload"] == entry.spec.workload
        assert row["elapsed_us"] == (
            entry.outcome.user_time_us + entry.outcome.system_time_us
        )
        assert row["moves"] is not None
        # Chaos-only metrics are None on plain runs, not missing.
        assert row["faults_injected"] is None
        assert row["tlb_hit_ratio"] is None

    def test_chaos_entry(self, dataset):
        entry = next(
            e for e in dataset.entries if e.outcome.kind == "chaos"
        )
        row = derive_row(entry)
        assert row["kind"] == "chaos"
        chaos = entry.outcome.chaos
        assert row["faults_injected"] == sum(
            value
            for key, value in chaos.faults.items()
            if key.startswith("injected_") and isinstance(value, int)
        )
        assert 0.0 <= row["tlb_hit_ratio"] <= 1.0
        assert row["measured_alpha"] is None

    def test_rows_share_one_schema(self, dataset):
        rows = [derive_row(entry) for entry in dataset.entries]
        keys = {tuple(sorted(row)) for row in rows}
        assert len(keys) == 1, "run and chaos rows must align columns"


class TestCacheDataset:
    def test_lookup_and_table(self, dataset):
        required = flatten(placement_triples(APPS, **GRID))
        assert all(dataset.has(spec) for spec in required)
        assert dataset.missing(required) == []
        assert dataset.get(required[0]).kind == "run"
        assert len(dataset.table()) == len(dataset) == 8

    def test_missing_preserves_input_order(self, dataset):
        absent = [
            RunSpec(workload="ParMult", quick=True, n_processors=5),
            RunSpec(workload="FFT", quick=True, n_processors=5),
        ]
        assert dataset.missing(absent + flatten(
            placement_triples(APPS, **GRID)
        )) == absent

    def test_table_is_cached(self, dataset):
        assert dataset.table() is dataset.table()


class TestEvaluationJoin:
    def test_full_cache_joins_every_app(self, dataset):
        join = evaluation_from_dataset(dataset, apps=APPS, **GRID)
        assert join.complete == APPS
        assert join.missing == []
        assert join.cache_ratio == 1.0
        assert join.required == 6
        assert len(join.fingerprints) == 6
        assert join.fingerprints == sorted(join.fingerprints)
        gammas = [row.params.gamma for row in join.evaluation.rows]
        assert all(g > 0 for g in gammas)

    def test_partial_cache_degrades_to_partial_report(self, cache_root):
        cache = ResultCache(cache_root)
        victim = placement_triples(["FFT"], **GRID)[0].tnuma
        entry_text = cache.path_for(victim).read_text()
        cache.invalidate(victim)
        try:
            join = evaluation_from_dataset(
                CacheDataset.load(cache_root), apps=APPS, **GRID
            )
            assert join.complete == ["ParMult"]
            assert join.missing == [victim]
            assert join.required == 4  # 3 served + 1 missing
            assert join.cache_ratio == pytest.approx(0.75)
        finally:
            path = cache.path_for(victim)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(entry_text)

    def test_missing_lines_are_sorted_and_labelled(self):
        specs = flatten(placement_triples(["ParMult"], **GRID))
        lines = missing_lines(specs)
        assert lines == sorted(lines)
        for line in lines:
            fingerprint, label = line.split(None, 1)
            assert len(fingerprint) == 64
            assert "ParMult" in label


class TestSections:
    def test_footnote_names_schema_and_short_fingerprints(self):
        text = footnote(["a" * 64, "b" * 64, "a" * 64])
        assert text.startswith("> derived from 2 cached spec(s)")
        assert CACHE_SCHEMA in text
        assert "a" * 12 in text and "a" * 13 not in text

    def test_summary_section_rolls_up_runs(self, dataset):
        title, body, fps = summary_section(dataset)
        assert "plain runs" in title
        assert "| workload |" in body
        assert len(fps) == 6  # the chaos entries stay out

    def test_threshold_versus_section(self, dataset):
        title, body, fps = threshold_versus_section(
            dataset, n_processors=2, quick=True
        )
        assert "gamma vs move threshold" in body
        assert "ParMult" in body and "FFT" in body
        assert fps, "the plot must name its contributing specs"

    def test_threshold_versus_without_baseline(self, tmp_path):
        title, body, fps = threshold_versus_section(
            CacheDataset.load(tmp_path), n_processors=2, quick=True
        )
        assert "no cached move-threshold runs" in body and fps == []

    def test_chaos_fan_section(self, dataset):
        title, body, fps = chaos_fan_section(dataset)
        assert "| workload | fault_profile |" in body
        assert "injected faults per profile" in body
        assert len(fps) == 2

    def test_frames_for_emitters(self, dataset):
        join = evaluation_from_dataset(dataset, apps=APPS, **GRID)
        t3 = table3_frame(join.evaluation)
        assert t3.columns[0] == "application"
        assert len(t3) == 2
        t4 = table4_frame(join.evaluation)
        assert [row["application"] for row in t4.rows] == ["FFT"]


class TestGenerateCacheReport:
    def test_regeneration_is_byte_identical(self, cache_root):
        bundles = [
            generate_cache_report(
                CacheDataset.load(cache_root), apps=APPS, **GRID
            )
            for _ in range(2)
        ]
        assert bundles[0].document == bundles[1].document
        assert bundles[0].sha256 == bundles[1].sha256

    def test_report_contents_and_provenance(self, dataset):
        bundle = generate_cache_report(dataset, apps=APPS, **GRID)
        doc = bundle.document
        assert "## Table 3 — the evaluation (from cache)" in doc
        assert "## Table 4 — NUMA-management overhead (from cache)" in doc
        assert "## Provenance" in doc
        assert f"cache schema  {CACHE_SCHEMA}" in doc
        assert "6 served from cache, 0 missing, 0 executed" in doc
        assert doc.count("> derived from") >= 5
        assert bundle.executed == 0
        assert bundle.cache_entries == 8
        names = [artifact.name for artifact in bundle.artifacts]
        assert names == [
            "table3", "table4", "alpha", "versus-threshold",
            "policy-tournament", "chaos-fans", "cache-summary",
        ]

    def test_empty_cache_renders_placeholders(self, tmp_path):
        bundle = generate_cache_report(
            CacheDataset.load(tmp_path), apps=APPS, **GRID
        )
        assert "no complete Tnuma/Tglobal/Tlocal triple" in bundle.document
        assert "### Missing specs" in bundle.document
        assert bundle.join.cache_ratio == 0.0
        summary = bundle.manifest_records()[0]
        assert summary["missing"] == 6 and summary["cached"] == 0

    def test_manifest_records(self, dataset):
        bundle = generate_cache_report(dataset, apps=APPS, **GRID)
        records = bundle.manifest_records()
        summary = records[0]
        assert summary["t"] == "report_summary"
        assert summary["executed"] == 0
        assert summary["cache_ratio"] == 1.0
        assert summary["sha256"] == bundle.sha256
        artifact_rows = [r for r in records if r["t"] == "report_artifact"]
        assert len(artifact_rows) == len(bundle.artifacts)
        # Footnotes shorten fingerprints; the manifest keeps them whole.
        for row in artifact_rows:
            assert all(len(fp) == 64 for fp in row["fingerprints"])

    def test_emit_tables(self, dataset, tmp_path):
        join = evaluation_from_dataset(dataset, apps=APPS, **GRID)
        written = emit_tables(join.evaluation, tmp_path / "tables")
        names = sorted(path.name for path in written)
        assert names == [
            "table3.csv", "table3.tex", "table4.csv", "table4.tex",
        ]
        assert "\\toprule" in (tmp_path / "tables" / "table3.tex").read_text()
        assert (tmp_path / "tables" / "table3.csv").read_text().startswith(
            "application,"
        )

    def test_emit_tables_rejects_unknown_format(self, dataset, tmp_path):
        from repro.errors import ConfigurationError

        join = evaluation_from_dataset(dataset, apps=APPS, **GRID)
        with pytest.raises(ConfigurationError):
            emit_tables(join.evaluation, tmp_path, formats=("xlsx",))


class TestPolicyTournamentSection:
    POLICIES = (("move-threshold", ()), ("adaptive-threshold", ()))

    @pytest.fixture()
    def tournament_root(self, tmp_path):
        root = tmp_path / "tournament-cache"
        cache = ResultCache(root)
        for spec in flatten(
            policy_tournament(
                apps=["ParMult"], policies=self.POLICIES,
                n_processors=2, quick=True,
            )
        ):
            cache.put(spec, spec.execute())
        return root

    def test_rows_carry_deltas_against_the_paper(self, tournament_root):
        title, body, fps = policy_tournament_section(
            CacheDataset.load(tournament_root),
            apps=["ParMult"], policies=self.POLICIES,
            n_processors=2, quick=True,
        )
        assert title == "Policy tournament"
        assert "adaptive-threshold" in body
        assert "d_alpha" in body
        assert "missing" not in body
        # Entrants plus the two shared baselines contribute.
        assert len(fps) == 4

    def test_missing_specs_are_listed_not_dropped(self, dataset):
        title, body, fps = policy_tournament_section(
            dataset,
            apps=["ParMult"],
            policies=(("move-threshold", ()), ("bandit", ()),),
            n_processors=2, quick=True,
        )
        # The placement-triple cache has never seen a bandit run.
        assert "bandit" in body
        assert "missing" in body
