"""Trace collection and false-sharing analysis."""

import pytest

from repro.analysis.false_sharing import PageClass, analyze
from repro.analysis.tracing import TraceCollector
from repro.core.policies import MoveThresholdPolicy
from repro.core.state import AccessKind
from repro.machine.timing import MemoryLocation
from repro.sim.harness import run_once
from repro.workloads.plytrace import PlyTrace
from repro.workloads.primes import Primes2


def ref(trace, cpu, vpage, reads=0, writes=0, local=True, writable=True):
    trace.on_reference(
        round_index=0,
        cpu=cpu,
        vpage=vpage,
        page_id=vpage,
        reads=reads,
        writes=writes,
        location=MemoryLocation.LOCAL if local else MemoryLocation.GLOBAL,
        writable_data=writable,
    )


class TestTraceCollector:
    def test_events_recorded_in_order(self):
        trace = TraceCollector()
        ref(trace, 0, 10, reads=1)
        ref(trace, 1, 11, writes=2)
        assert [e.vpage for e in trace.events] == [10, 11]
        assert trace.events[0].sequence < trace.events[1].sequence

    def test_faults_recorded(self):
        trace = TraceCollector()
        trace.on_fault(0, 1, 10, AccessKind.READ)
        assert len(trace.faults) == 1
        assert trace.faults[0].kind is AccessKind.READ

    def test_faults_can_be_dropped(self):
        trace = TraceCollector(keep_faults=False)
        trace.on_fault(0, 1, 10, AccessKind.READ)
        assert trace.faults == []

    def test_by_vpage_grouping(self):
        trace = TraceCollector()
        ref(trace, 0, 10, reads=1)
        ref(trace, 1, 11, reads=1)
        ref(trace, 2, 10, writes=1)
        grouped = trace.by_vpage()
        assert len(grouped[10]) == 2 and len(grouped[11]) == 1

    def test_page_summaries(self):
        trace = TraceCollector()
        ref(trace, 0, 10, reads=5)
        ref(trace, 1, 10, writes=3)
        summary = trace.page_summaries()[10]
        assert summary.reads == 5 and summary.writes == 3
        assert summary.readers == {0} and summary.writers == {1}
        assert summary.writably_shared

    def test_private_page_not_writably_shared(self):
        trace = TraceCollector()
        ref(trace, 0, 10, reads=5, writes=5)
        assert not trace.page_summaries()[10].writably_shared

    def test_local_fraction(self):
        trace = TraceCollector()
        ref(trace, 0, 10, reads=3, local=True)
        ref(trace, 0, 11, reads=1, local=False)
        assert trace.local_fraction() == pytest.approx(0.75)

    def test_local_fraction_none_when_empty(self):
        assert TraceCollector().local_fraction() is None

    def test_writable_only_filter(self):
        trace = TraceCollector()
        ref(trace, 0, 10, reads=4, writable=False)
        ref(trace, 0, 11, reads=1, local=False)
        assert trace.local_fraction(writable_only=True) == 0.0
        assert trace.local_fraction(writable_only=False) == pytest.approx(0.8)


class TestFalseSharingAnalysis:
    def test_classification(self):
        trace = TraceCollector()
        ref(trace, 0, 1, reads=10, writes=2)  # private
        ref(trace, 0, 2, reads=10)
        ref(trace, 1, 2, reads=10)  # read-shared
        ref(trace, 0, 3, writes=10)
        ref(trace, 1, 3, reads=10)  # writably shared
        report = analyze(trace)
        classes = {p.vpage: p.page_class for p in report.pages}
        assert classes[1] is PageClass.PRIVATE
        assert classes[2] is PageClass.READ_SHARED
        assert classes[3] is PageClass.WRITABLY_SHARED

    def test_suspect_requires_dominance(self):
        trace = TraceCollector()
        # Page 5: cpu 0 makes 95% of traffic, cpu 1 occasionally writes.
        ref(trace, 0, 5, reads=90, writes=5)
        ref(trace, 1, 5, writes=5)
        # Page 6: traffic evenly split — genuine sharing, not false.
        ref(trace, 0, 6, writes=50)
        ref(trace, 1, 6, writes=50)
        report = analyze(trace, dominance_threshold=0.75)
        suspects = {p.vpage for p in report.suspects}
        assert suspects == {5}

    def test_suspect_refs_fraction(self):
        trace = TraceCollector()
        ref(trace, 0, 5, reads=95)
        ref(trace, 1, 5, writes=5)
        ref(trace, 0, 6, reads=100, writes=0)
        report = analyze(trace)
        assert report.suspect_refs_fraction() == pytest.approx(0.5)

    def test_empty_trace(self):
        report = analyze(TraceCollector())
        assert report.pages == []
        assert report.suspect_refs_fraction() is None


class TestOnRealWorkloads:
    def test_shared_divisor_primes2_shows_false_sharing(self):
        """The untuned Primes2's divisor fetches make the shared output
        vector a false-sharing suspect zone (mostly-read, rarely-written
        pages classified writably shared)."""
        trace = TraceCollector()
        run_once(
            Primes2(limit=6_000, private_divisors=False),
            MoveThresholdPolicy(threshold=4),
            n_processors=4,
            observer=trace,
        )
        report = analyze(trace)
        assert len(report.writably_shared_pages) > 0
        assert len(report.suspects) >= 0  # analysis completes

    def test_packed_plytrace_has_more_writably_shared_pages(self):
        def shared_pages(workload):
            trace = TraceCollector()
            run_once(
                workload, MoveThresholdPolicy(threshold=4), n_processors=4,
                observer=trace,
            )
            return len(analyze(trace).writably_shared_pages)

        padded = shared_pages(PlyTrace.small())
        packed = shared_pages(PlyTrace(n_polygons=400, padded_framebuffer=False))
        assert packed > padded
