"""TraceCollector save_jsonl/load_jsonl round-trip fidelity."""

import json

import pytest

from repro.analysis.tracing import TraceCollector
from repro.core.state import AccessKind
from repro.errors import ConfigurationError
from repro.machine.timing import MemoryLocation


def build_trace():
    """An interleaved trace: fault, ref, ref, fault, ref."""
    trace = TraceCollector()
    trace.on_fault(0, 1, 10, AccessKind.READ)
    trace.on_reference(0, 1, 10, 100, 5, 0, MemoryLocation.LOCAL, True)
    trace.on_reference(1, 2, 11, 101, 0, 3, MemoryLocation.GLOBAL, False)
    trace.on_fault(2, 0, 12, AccessKind.WRITE)
    trace.on_reference(2, 0, 12, 102, 1, 1, MemoryLocation.REMOTE, True)
    return trace


class TestRoundTrip:
    def test_events_and_faults_survive(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        original = build_trace()
        assert original.save_jsonl(path) == 5
        loaded = TraceCollector.load_jsonl(path)
        assert loaded.events == original.events
        assert loaded.faults == original.faults

    def test_enum_fields_round_trip_as_enums(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        build_trace().save_jsonl(path)
        loaded = TraceCollector.load_jsonl(path)
        assert loaded.events[0].location is MemoryLocation.LOCAL
        assert loaded.events[1].location is MemoryLocation.GLOBAL
        assert loaded.events[2].location is MemoryLocation.REMOTE
        assert loaded.faults[0].kind is AccessKind.READ
        assert loaded.faults[1].kind is AccessKind.WRITE

    def test_file_preserves_execution_order(self, tmp_path):
        """Refs and faults are merged by sequence, not grouped by type."""
        path = tmp_path / "trace.jsonl"
        build_trace().save_jsonl(path)
        kinds = [
            json.loads(line)["t"]
            for line in path.read_text().splitlines()
        ]
        assert kinds == ["fault", "ref", "ref", "fault", "ref"]
        sequences = [
            json.loads(line)["seq"]
            for line in path.read_text().splitlines()
        ]
        assert sequences == sorted(sequences)

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        assert TraceCollector().save_jsonl(path) == 0
        loaded = TraceCollector.load_jsonl(path)
        assert loaded.events == []
        assert loaded.faults == []

    def test_sequence_counter_resumes_after_load(self, tmp_path):
        """New events after a load must not collide with loaded ones."""
        path = tmp_path / "trace.jsonl"
        build_trace().save_jsonl(path)
        loaded = TraceCollector.load_jsonl(path)
        loaded.on_reference(9, 0, 1, 1, 1, 0, MemoryLocation.LOCAL, True)
        sequences = [e.sequence for e in loaded.events] + [
            f.sequence for f in loaded.faults
        ]
        assert len(set(sequences)) == len(sequences)

    def test_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        build_trace().save_jsonl(path)
        padded = tmp_path / "padded.jsonl"
        padded.write_text("\n" + path.read_text() + "\n\n")
        loaded = TraceCollector.load_jsonl(padded)
        assert len(loaded.events) == 3
        assert len(loaded.faults) == 2

    def test_unknown_record_kind_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"t": "mystery"}) + "\n")
        with pytest.raises(ConfigurationError):
            TraceCollector.load_jsonl(path)

    def test_derived_views_identical_after_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        original = build_trace()
        original.save_jsonl(path)
        loaded = TraceCollector.load_jsonl(path)
        assert loaded.local_fraction() == original.local_fraction()
        assert (
            loaded.page_summaries().keys()
            == original.page_summaries().keys()
        )
