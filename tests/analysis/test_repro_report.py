"""The one-shot reproduction report."""

import pytest

from repro.analysis.repro_report import generate_report, write_report
from repro.workloads import small_workloads


@pytest.fixture(scope="module")
def report_text():
    workloads = {
        name: (lambda wl=wl: wl)
        for name, wl in small_workloads().items()
        if name in ("ParMult", "IMatMult")
    }
    return generate_report(workloads, n_processors=3)


class TestGenerateReport:
    def test_has_every_section(self, report_text):
        for heading in (
            "# Reproduction report",
            "## Section 2.2",
            "### Table 1",
            "### Table 2",
            "## Table 3",
            "## Table 4",
            "## Figure 1",
            "## Figure 2",
        ):
            assert heading in report_text

    def test_embeds_the_protocol_cells(self, report_text):
        assert "sync&flush other" in report_text
        assert "copy to local" in report_text

    def test_embeds_the_latency_check(self, report_text):
        assert "G/L fetch 2.31" in report_text

    def test_embeds_the_evaluation(self, report_text):
        assert "IMatMult" in report_text
        assert "α(paper)" in report_text

    def test_names_the_paper(self, report_text):
        assert "Bolosky" in report_text
        assert "SOSP '89" in report_text

    def test_write_report(self, tmp_path):
        workloads = {
            name: (lambda wl=wl: wl)
            for name, wl in small_workloads().items()
            if name == "ParMult"
        }
        path = write_report(
            tmp_path / "REPORT.md", workloads, n_processors=2
        )
        assert path.exists()
        assert "# Reproduction report" in path.read_text()
