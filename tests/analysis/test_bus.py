"""The IPC-bus utilization model."""

import pytest

from repro.analysis.bus import BUS_WORD_US, BusReport, analyze_bus
from repro.core.policies import AllGlobalPolicy, MoveThresholdPolicy
from repro.machine.config import ace_config
from repro.sim.harness import run_once
from repro.workloads.gfetch import Gfetch
from repro.workloads.primes import Primes1


class TestBusReport:
    def test_word_time_is_80_mb_per_second(self):
        # 4 bytes at 80 MB/s = 0.05 us.
        assert BUS_WORD_US == pytest.approx(0.05)

    def test_utilization(self):
        report = BusReport(
            reference_words=1000,
            protocol_words=1000,
            busy_us=100.0,
            elapsed_us=1000.0,
        )
        assert report.total_words == 2000
        assert report.utilization == pytest.approx(0.1)

    def test_contention_factor_grows_with_rho(self):
        low = BusReport(0, 0, busy_us=50.0, elapsed_us=1000.0)
        high = BusReport(0, 0, busy_us=500.0, elapsed_us=1000.0)
        assert low.contention_factor < high.contention_factor

    def test_contention_factor_capped_at_saturation(self):
        saturated = BusReport(0, 0, busy_us=5000.0, elapsed_us=1000.0)
        assert saturated.contention_factor == pytest.approx(20.0)

    def test_zero_elapsed_is_zero_utilization(self):
        assert BusReport(0, 0, 0.0, 0.0).utilization == 0.0

    def test_contention_free_threshold(self):
        assert BusReport(0, 0, 50.0, 1000.0).contention_free
        assert not BusReport(0, 0, 150.0, 1000.0).contention_free


class TestAnalyzeBus:
    def test_local_only_run_has_no_reference_traffic(self):
        result = run_once(
            Primes1.small(),
            MoveThresholdPolicy(threshold=4),
            n_processors=1,
            n_threads=1,
        )
        report = analyze_bus(result, ace_config(1))
        assert report.reference_words == 0

    def test_gfetch_is_the_bus_hog(self):
        config = ace_config(7)
        gfetch = analyze_bus(
            run_once(
                Gfetch.small(), MoveThresholdPolicy(threshold=4), n_processors=7
            ),
            config,
        )
        primes = analyze_bus(
            run_once(
                Primes1.small(), MoveThresholdPolicy(threshold=4), n_processors=7
            ),
            config,
        )
        assert gfetch.utilization > primes.utilization * 3

    def test_all_global_policy_increases_bus_traffic(self):
        config = ace_config(4)
        numa = analyze_bus(
            run_once(
                Primes1.small(), MoveThresholdPolicy(threshold=4), n_processors=4
            ),
            config,
        )
        all_global = analyze_bus(
            run_once(Primes1.small(), AllGlobalPolicy(), n_processors=4),
            config,
        )
        assert all_global.reference_words > numa.reference_words * 10

    def test_protocol_words_include_copies(self):
        result = run_once(
            Gfetch.small(), MoveThresholdPolicy(threshold=4), n_processors=4
        )
        report = analyze_bus(result, ace_config(4))
        expected = (
            result.stats.copies_to_local
            + result.stats.syncs
            + result.stats.global_zero_fills
        ) * 1024
        assert report.protocol_words == expected
