"""Equations 1-5: solving, prediction, and round-trip properties."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis import model
from repro.analysis.paper import TABLE_3
from repro.errors import ConfigurationError


class TestGamma:
    def test_gamma_is_the_expansion_factor(self):
        assert model.gamma(2.0, 1.0) == 2.0

    def test_gamma_requires_positive_tlocal(self):
        with pytest.raises(ConfigurationError):
            model.gamma(1.0, 0.0)


class TestSolve:
    def test_all_global_time_recovers_alpha_zero(self):
        # When Tnuma equals Tglobal, no references were local.
        params = model.solve(2.0, 2.0, 1.0, g_over_l=2.0)
        assert params.alpha == pytest.approx(0.0)

    def test_perfect_placement_recovers_alpha_one(self):
        params = model.solve(2.0, 1.0, 1.0, g_over_l=2.0)
        assert params.alpha == pytest.approx(1.0)

    def test_beta_from_all_memory_time(self):
        # Tglobal = Tlocal * (1 + beta*(G/L - 1)); with G/L=2, beta = spread.
        params = model.solve(1.5, 1.0, 1.0, g_over_l=2.0)
        assert params.beta == pytest.approx(0.5)

    def test_alpha_undefined_when_no_memory_sensitivity(self):
        params = model.solve(1.0, 1.0, 1.0, g_over_l=2.0)
        assert params.alpha is None
        assert params.format_alpha() == "na"

    def test_format_alpha(self):
        params = model.ModelParameters(alpha=0.666, beta=0.1, gamma=1.0)
        assert params.format_alpha() == "0.67"

    def test_g_over_l_must_exceed_one(self):
        with pytest.raises(ConfigurationError):
            model.solve_beta(2.0, 1.0, g_over_l=1.0)


class TestPredict:
    def test_predict_t_global_is_alpha_zero(self):
        assert model.predict_t_global(1.0, 0.5, 2.0) == pytest.approx(
            model.predict_t_numa(1.0, 0.0, 0.5, 2.0)
        )

    def test_predict_with_alpha_one_is_tlocal(self):
        assert model.predict_t_numa(3.0, 1.0, 0.7, 2.0) == pytest.approx(3.0)

    def test_predict_validates_inputs(self):
        with pytest.raises(ConfigurationError):
            model.predict_t_numa(1.0, 1.5, 0.5, 2.0)
        with pytest.raises(ConfigurationError):
            model.predict_t_numa(1.0, 0.5, -0.1, 2.0)

    @given(
        alpha=st.floats(min_value=0.0, max_value=1.0),
        beta=st.floats(min_value=0.01, max_value=1.0),
        t_local=st.floats(min_value=0.1, max_value=1e5),
        g_over_l=st.floats(min_value=1.1, max_value=4.0),
    )
    def test_solve_inverts_predict(self, alpha, beta, t_local, g_over_l):
        """Generating times from (α, β) and solving must recover them."""
        t_numa = model.predict_t_numa(t_local, alpha, beta, g_over_l)
        t_global = model.predict_t_global(t_local, beta, g_over_l)
        params = model.solve(t_global, t_numa, t_local, g_over_l)
        assert params.beta == pytest.approx(beta, rel=1e-6)
        if params.alpha is not None:
            assert params.alpha == pytest.approx(alpha, rel=1e-4, abs=1e-4)

    @given(
        beta=st.floats(min_value=0.0, max_value=1.0),
        t_local=st.floats(min_value=0.1, max_value=1e5),
    )
    def test_predictions_are_ordered(self, beta, t_local):
        """Tlocal <= Tnuma(α) <= Tglobal for any α."""
        g = 2.0
        t_global = model.predict_t_global(t_local, beta, g)
        for alpha in (0.0, 0.3, 0.7, 1.0):
            t_numa = model.predict_t_numa(t_local, alpha, beta, g)
            assert t_local <= t_numa + 1e-9
            assert t_numa <= t_global + 1e-9


class TestAgainstPaperRows:
    @pytest.mark.parametrize(
        "name", ["IMatMult", "Primes3", "FFT", "PlyTrace"]
    )
    def test_paper_rows_are_roughly_self_consistent(self, name):
        """Feeding the paper's published times through our solver must
        land near the paper's published α (their derivation, our code)."""
        row = TABLE_3[name]
        alpha = model.solve_alpha(row.t_global, row.t_numa, row.t_local)
        assert alpha == pytest.approx(row.alpha, abs=0.03)

    def test_gfetch_gamma_matches_published(self):
        row = TABLE_3["Gfetch"]
        assert model.gamma(row.t_numa, row.t_local) == pytest.approx(
            row.gamma, abs=0.01
        )
