"""DataTable: relational verbs, canonical cell formatting, emitters."""

import csv
import io

import pytest

from repro.analysis.frames import DataTable, format_cell
from repro.analysis.versus import VersusSeries, versus_from_table, versus_plot


ROWS = [
    {"workload": "ParMult", "threshold": 0, "gamma": 1.25, "quick": True},
    {"workload": "ParMult", "threshold": 4, "gamma": 1.0, "quick": True},
    {"workload": "FFT", "threshold": 4, "gamma": 1.5, "quick": True},
    {"workload": "FFT", "threshold": 0, "gamma": None, "quick": False},
]


class TestFormatCell:
    @pytest.mark.parametrize(
        "value, expected",
        [
            (None, "na"),
            (True, "true"),
            (False, "false"),
            (1.0, "1"),
            (1.25, "1.25"),
            (0.0, "0"),
            (-0.00001, "0"),  # rounds away to the canonical zero
            (1.23456789, "1.2346"),
            (42, "42"),
            ("text", "text"),
        ],
    )
    def test_canonical_rendering(self, value, expected):
        assert format_cell(value) == expected

    def test_digits_parameter(self):
        assert format_cell(1.23456789, float_digits=2) == "1.23"


class TestConstruction:
    def test_columns_are_first_seen_order(self):
        table = DataTable([{"b": 1, "a": 2}, {"a": 3, "c": 4}])
        assert table.columns == ["b", "a", "c"]
        assert len(table) == 2 and bool(table)

    def test_explicit_columns_win(self):
        table = DataTable(ROWS, columns=["gamma", "workload"])
        assert table.columns == ["gamma", "workload"]

    def test_from_records_flattens_like_the_csv_exporter(self):
        from repro.obs.exporters import flatten_record

        record = {
            "t": "sample",
            "delta": {"moves": 3, "syncs": 1},
            "per_cpu": [10, 20],
        }
        table = DataTable.from_records([record])
        assert table.rows[0] == flatten_record(record)
        assert table.rows[0]["delta.moves"] == 3
        assert table.rows[0]["per_cpu.1"] == 20


class TestVerbs:
    def test_where_equals_and_predicate(self):
        table = DataTable(ROWS)
        assert len(table.where(workload="ParMult")) == 2
        assert len(table.where(workload="ParMult", threshold=4)) == 1
        fast = table.where(lambda row: (row["gamma"] or 9) < 1.3)
        assert len(fast) == 2

    def test_select_narrows_and_orders(self):
        narrow = DataTable(ROWS).select("gamma", "workload")
        assert narrow.columns == ["gamma", "workload"]
        assert narrow.rows[0] == {"gamma": 1.25, "workload": "ParMult"}

    def test_with_column_derives(self):
        table = DataTable(ROWS).with_column(
            "slow", lambda row: (row["gamma"] or 0) > 1.2
        )
        assert table.columns[-1] == "slow"
        assert [row["slow"] for row in table.rows][:3] == [True, False, True]

    def test_sort_by_total_orders_mixed_cells(self):
        table = DataTable(ROWS).sort_by("gamma")
        assert table.column("gamma") == [None, 1.0, 1.25, 1.5]
        assert DataTable(ROWS).sort_by("workload", "threshold").column(
            "threshold"
        ) == [0, 4, 0, 4]

    def test_group_by_sorts_keys(self):
        groups = DataTable(ROWS).group_by("workload")
        assert [key for key, _ in groups] == [("FFT",), ("ParMult",)]
        assert [len(group) for _, group in groups] == [2, 2]

    def test_unique_is_sorted(self):
        assert DataTable(ROWS).unique("threshold") == [0, 4]


class TestAggregate:
    def test_builtin_aggregations(self):
        out = DataTable(ROWS).aggregate(
            ("workload",),
            {
                "n": ("gamma", "count"),
                "lo": ("gamma", "min"),
                "hi": ("gamma", "max"),
                "mean": ("gamma", "mean"),
            },
        )
        assert out.columns == ["workload", "n", "lo", "hi", "mean"]
        fft = out.where(workload="FFT").rows[0]
        # None gamma dropped before folding: one FFT value survives.
        assert fft["n"] == 1 and fft["mean"] == 1.5
        par = out.where(workload="ParMult").rows[0]
        assert (par["lo"], par["hi"]) == (1.0, 1.25)

    def test_all_none_group_yields_none(self):
        out = DataTable([{"k": "a", "v": None}]).aggregate(
            ("k",), {"v": ("v", "mean")}
        )
        assert out.rows[0]["v"] is None

    def test_callable_aggregation(self):
        out = DataTable(ROWS).aggregate(
            ("quick",), {"spread": ("gamma", lambda vs: max(vs) - min(vs))}
        )
        assert out.where(quick=True).rows[0]["spread"] == 0.5

    def test_pivot(self):
        wide = DataTable(ROWS).pivot("workload", "threshold", "gamma")
        assert wide.columns == ["workload", "0", "4"]
        rows = {row["workload"]: row for row in wide.rows}
        assert rows["ParMult"]["0"] == 1.25
        assert rows["FFT"].get("0") is None  # the None-gamma cell


class TestEmitters:
    def test_markdown_shape(self):
        text = DataTable(ROWS).select("workload", "gamma").to_markdown()
        lines = text.splitlines()
        assert lines[0] == "| workload | gamma |"
        assert lines[1] == "|---|---|"
        assert lines[-1] == "| FFT | na |"

    def test_csv_round_trips_through_the_stdlib(self):
        text = DataTable(ROWS).to_csv()
        parsed = list(csv.reader(io.StringIO(text)))
        assert parsed[0] == ["workload", "threshold", "gamma", "quick"]
        assert parsed[1] == ["ParMult", "0", "1.25", "true"]

    def test_latex_escapes_and_booktabs(self):
        table = DataTable([{"a_b": "50%", "c&d": 1}])
        text = table.to_latex(caption="x_y", label="tab:t")
        assert "\\toprule" in text and "\\bottomrule" in text
        assert "a\\_b & c\\&d" in text
        assert "50\\%" in text
        assert "\\caption{x\\_y}" in text and "\\label{tab:t}" in text

    def test_text_is_fixed_width(self):
        text = DataTable(ROWS).select("workload", "gamma").to_text(
            title="t"
        )
        lines = text.splitlines()
        assert lines[0] == "t"
        assert set(lines[2]) == {"-", " "}
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1, "all rows pad to one width"

    def test_emitters_share_cell_formatting(self):
        table = DataTable([{"v": 1.0}, {"v": None}])
        for text in (table.to_markdown(), table.to_csv(), table.to_text()):
            assert "na" in text
            assert "1.0" not in text  # floats render trimmed everywhere


class TestVersus:
    def test_series_sorts_points_and_bounds(self):
        series = VersusSeries.from_mapping(
            "s", {4: [2.0, 1.0], 0: [3.0], 8: []}
        )
        assert [x for x, _ in series.points] == [0, 4]
        assert series.bounds() == (1.0, 3.0)

    def test_plot_bands_and_scale(self):
        plot = versus_plot(
            [VersusSeries.from_mapping("ParMult", {0: [1.0, 3.0], 4: [2.0]})],
            xlabel="threshold",
            ylabel="gamma",
            title="demo",
        )
        lines = plot.splitlines()
        assert lines[0] == "demo"
        assert "[y: 1 .. 3]" in lines[1]
        banded = next(line for line in lines if line.strip().startswith("0"))
        assert "=" in banded and "*" in banded
        point = next(line for line in lines if line.strip().startswith("4"))
        strip = point[point.index("|"):]
        # A single deterministic sample collapses to the mean marker.
        assert strip.count("*") == 1 and "=" not in strip

    def test_plot_without_points(self):
        assert "no data points" in versus_plot([], "x", "y")

    def test_versus_from_table_drops_none_and_bands_repeats(self):
        table = DataTable(
            [
                {"w": "a", "x": 0, "y": 1.0},
                {"w": "a", "x": 0, "y": 2.0},
                {"w": "a", "x": 4, "y": None},
                {"w": "b", "x": 0, "y": 1.5},
            ]
        )
        plot = versus_from_table(table, x="x", y="y", series_by="w")
        assert "-- a" in plot and "-- b" in plot
        a_zero = next(
            line
            for line in plot.splitlines()[plot.splitlines().index("-- a"):]
            if line.strip().startswith("0")
        )
        assert "1.5" in a_zero  # mean of the two repeats at x=0

    def test_plot_is_deterministic(self):
        table = DataTable(ROWS)
        first = versus_from_table(table, x="threshold", y="gamma",
                                  series_by="workload")
        second = versus_from_table(table, x="threshold", y="gamma",
                                   series_by="workload")
        assert first == second
