"""Evaluation driver, table renderers, figures, and the paper constants."""

import pytest

from repro.analysis.diagrams import figure1, figure2, wiring_report
from repro.analysis.paper import (
    ACE_LATENCIES,
    ACE_RATIOS,
    TABLE_3,
    TABLE_4,
    TABLE_3_APPLICATIONS,
    TABLE_4_APPLICATIONS,
)
from repro.analysis.report import (
    format_measured_alpha,
    format_table3,
    format_table4,
    run_evaluation,
)
from repro.machine.config import ace_config
from repro.workloads import small_workloads


@pytest.fixture(scope="module")
def small_evaluation():
    workloads = {
        name: (lambda wl=wl: wl)
        for name, wl in small_workloads().items()
        if name in ("ParMult", "IMatMult", "Primes3")
    }
    return run_evaluation(workloads, n_processors=3)


class TestPaperConstants:
    def test_table3_has_all_eight_applications(self):
        assert len(TABLE_3) == 8
        assert set(TABLE_3_APPLICATIONS) == set(TABLE_3)

    def test_table4_has_five_applications(self):
        assert len(TABLE_4) == 5
        assert set(TABLE_4_APPLICATIONS) <= set(TABLE_3)

    def test_parmult_alpha_is_na(self):
        assert TABLE_3["ParMult"].alpha is None

    def test_primes1_delta_s_is_na(self):
        assert TABLE_4["Primes1"].delta_s is None

    def test_all_fetch_codes_use_2_3(self):
        assert TABLE_3["Gfetch"].g_over_l == 2.3
        assert TABLE_3["IMatMult"].g_over_l == 2.3
        assert TABLE_3["Primes1"].g_over_l == 2.0

    def test_latencies_match_config_defaults(self):
        from repro.machine.config import TimingParameters

        t = TimingParameters()
        for name, value in ACE_LATENCIES.items():
            assert getattr(t, name) == value
        assert ACE_RATIOS["fetch"] == 2.3


class TestEvaluation:
    def test_rows_cover_requested_workloads(self, small_evaluation):
        names = {row.application for row in small_evaluation.rows}
        assert names == {"ParMult", "IMatMult", "Primes3"}

    def test_row_lookup(self, small_evaluation):
        assert small_evaluation.row("IMatMult").application == "IMatMult"
        with pytest.raises(KeyError):
            small_evaluation.row("nope")

    def test_delta_s_na_when_negative(self, small_evaluation):
        row = small_evaluation.row("ParMult")
        # The na convention: a negative ΔS reports as None with ratio 0.
        if row.delta_s is None:
            assert row.delta_over_t == 0.0
        else:
            assert row.delta_s > 0
            assert row.delta_over_t == pytest.approx(
                row.delta_s / row.measurement.t_numa_s
            )

    def test_format_table3_mentions_every_application(self, small_evaluation):
        text = format_table3(small_evaluation)
        for name in ("ParMult", "IMatMult", "Primes3"):
            assert name in text
        assert "Tglobal" in text and "γ" in text

    def test_format_table3_shows_paper_columns(self, small_evaluation):
        assert "α(paper)" in format_table3(small_evaluation)
        assert "α(paper)" not in format_table3(
            small_evaluation, include_paper=False
        )

    def test_format_table4_filters_to_table4_apps(self, small_evaluation):
        text = format_table4(small_evaluation)
        assert "IMatMult" in text and "Primes3" in text
        assert "ParMult" not in text  # not a Table 4 application

    def test_format_measured_alpha(self, small_evaluation):
        text = format_measured_alpha(small_evaluation)
        assert "α(measured)" in text


class TestDiagrams:
    def test_figure1_reflects_configuration(self):
        text = figure1(ace_config(5))
        assert "5 processor modules" in text
        assert "IPC bus" in text
        assert "global memory" in text
        assert "8MB local" in text

    def test_figure1_small_machine_draws_all_cpus(self):
        text = figure1(ace_config(2))
        assert "not drawn" not in text

    def test_figure2_names_all_four_modules(self):
        text = figure2()
        for module in (
            "pmap manager",
            "MMU interface",
            "NUMA manager",
            "NUMA policy",
        ):
            assert module in text

    def test_wiring_report_points_at_real_modules(self):
        text = wiring_report()
        assert "repro.vm.pmap" in text
        assert "repro.core.numa_manager" in text
        assert "repro.machine.mmu" in text
        assert "repro.core.policy" in text
