"""Speedup curves and trace persistence."""

import pytest

from repro.analysis.speedup import (
    SpeedupCurve,
    SpeedupPoint,
    elapsed_us,
    speedup_curve,
)
from repro.analysis.tracing import TraceCollector
from repro.core.policies import MoveThresholdPolicy
from repro.core.state import AccessKind
from repro.errors import ConfigurationError
from repro.machine.timing import MemoryLocation
from repro.sim.harness import run_once
from repro.workloads.gfetch import Gfetch
from repro.workloads.primes import Primes1


class TestSpeedupCurve:
    def test_private_workload_speeds_up_nearly_linearly(self):
        curve = speedup_curve(
            Primes1.small, processors=(1, 2, 4)
        )
        assert curve.point(1).speedup == pytest.approx(1.0)
        assert curve.point(4).speedup > 3.0
        assert curve.point(4).efficiency > 0.75

    def test_bus_bound_workload_speedup_is_capped_by_gamma(self):
        """Gfetch's fetches all turn global: speedup ~ n / (G/L)."""
        curve = speedup_curve(Gfetch.small, processors=(1, 4))
        assert curve.point(4).speedup < 2.8  # far below linear

    def test_speedup_is_monotone_in_processors(self):
        curve = speedup_curve(Primes1.small, processors=(1, 2, 4))
        speeds = [p.speedup for p in curve.points]
        assert speeds == sorted(speeds)

    def test_baseline_inserted_when_missing(self):
        curve = speedup_curve(Primes1.small, processors=(2, 4))
        assert curve.points[0].n_processors == 1

    def test_format_mentions_every_size(self):
        curve = SpeedupCurve(
            workload="x",
            points=[
                SpeedupPoint(1, 100.0, 100.0, 0.0, 1.0),
                SpeedupPoint(4, 30.0, 110.0, 1.0, 3.33),
            ],
        )
        text = curve.format()
        assert "1p" in text and "4p" in text

    def test_point_lookup_raises_on_missing(self):
        curve = SpeedupCurve(workload="x", points=[])
        with pytest.raises(KeyError):
            curve.point(3)

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ConfigurationError):
            speedup_curve(Primes1.small, processors=())
        with pytest.raises(ConfigurationError):
            speedup_curve(Primes1.small, processors=(0, 2))

    def test_elapsed_is_busiest_processor(self):
        result = run_once(
            Primes1.small(), MoveThresholdPolicy(threshold=4), n_processors=3
        )
        assert elapsed_us(result) == max(
            t.total_us for t in result.per_cpu
        )


class TestTracePersistence:
    def populate(self, trace):
        trace.on_reference(
            0, 1, 10, 100, 5, 2, MemoryLocation.LOCAL, True
        )
        trace.on_fault(0, 2, 11, AccessKind.WRITE)
        trace.on_reference(
            1, 0, 11, 101, 0, 3, MemoryLocation.GLOBAL, False
        )

    def test_round_trip(self, tmp_path):
        trace = TraceCollector()
        self.populate(trace)
        path = tmp_path / "trace.jsonl"
        assert trace.save_jsonl(path) == 3
        loaded = TraceCollector.load_jsonl(path)
        assert loaded.events == trace.events
        assert loaded.faults == trace.faults

    def test_sequence_counter_restored(self, tmp_path):
        trace = TraceCollector()
        self.populate(trace)
        path = tmp_path / "trace.jsonl"
        trace.save_jsonl(path)
        loaded = TraceCollector.load_jsonl(path)
        loaded.on_reference(2, 0, 12, 102, 1, 0, MemoryLocation.LOCAL, True)
        assert loaded.events[-1].sequence == 3

    def test_analyses_work_on_loaded_traces(self, tmp_path):
        trace = TraceCollector()
        run_once(
            Primes1.small(),
            MoveThresholdPolicy(threshold=4),
            n_processors=3,
            observer=trace,
        )
        path = tmp_path / "primes1.jsonl"
        trace.save_jsonl(path)
        loaded = TraceCollector.load_jsonl(path)
        assert loaded.local_fraction() == trace.local_fraction()
        assert len(loaded.page_summaries()) == len(trace.page_summaries())

    def test_bad_record_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"t": "mystery"}\n')
        with pytest.raises(ConfigurationError):
            TraceCollector.load_jsonl(path)

    def test_blank_lines_ignored(self, tmp_path):
        trace = TraceCollector()
        self.populate(trace)
        path = tmp_path / "trace.jsonl"
        trace.save_jsonl(path)
        path.write_text(path.read_text() + "\n\n")
        loaded = TraceCollector.load_jsonl(path)
        assert len(loaded.events) == 2
