"""The layout advisor: automated Section 4.2 tuning advice."""

import pytest

from repro.analysis.layout_advisor import AdviceKind, advise
from repro.analysis.tracing import TraceCollector
from repro.core.policies import MoveThresholdPolicy
from repro.machine.timing import MemoryLocation
from repro.sim.harness import build_simulation
from repro.workloads.plytrace import PlyTrace
from repro.workloads.primes import Primes2, Primes3


def ref(trace, cpu, vpage, reads=0, writes=0):
    trace.on_reference(
        round_index=0,
        cpu=cpu,
        vpage=vpage,
        page_id=vpage,
        reads=reads,
        writes=writes,
        location=MemoryLocation.GLOBAL,
        writable_data=True,
    )


def run_traced(workload, n_processors=7):
    trace = TraceCollector(keep_faults=False)
    sim = build_simulation(
        workload,
        MoveThresholdPolicy(threshold=4),
        n_processors,
        observer=trace,
        check_invariants=False,
    )
    sim.engine.run(sim.threads)
    return trace, sim.space


class TestSyntheticPatterns:
    def test_dominated_page_gets_segregate(self):
        trace = TraceCollector()
        ref(trace, 0, 5, reads=900, writes=60)
        ref(trace, 1, 5, writes=40)
        report = advise(trace)
        assert len(report.advice) == 1
        advice = report.advice[0]
        assert advice.kind is AdviceKind.SEGREGATE
        assert advice.estimated_saving_us > 0

    def test_read_mostly_page_gets_privatize(self):
        trace = TraceCollector()
        for cpu in range(4):
            ref(trace, cpu, 6, reads=500)
        ref(trace, 0, 6, writes=10)
        report = advise(trace)
        assert report.advice[0].kind is AdviceKind.PRIVATIZE

    def test_genuinely_shared_page_gets_pragma(self):
        trace = TraceCollector()
        for cpu in range(4):
            ref(trace, cpu, 7, reads=200, writes=200)
        report = advise(trace)
        assert report.advice[0].kind is AdviceKind.MARK_NONCACHEABLE
        assert report.advice[0].estimated_saving_us == 0.0

    def test_private_pages_get_no_advice(self):
        trace = TraceCollector()
        ref(trace, 0, 8, reads=1000, writes=1000)
        assert advise(trace).advice == []

    def test_tiny_pages_are_ignored(self):
        trace = TraceCollector()
        ref(trace, 0, 9, writes=5)
        ref(trace, 1, 9, writes=5)
        assert advise(trace, min_refs=64).advice == []

    def test_ranking_by_saving(self):
        trace = TraceCollector()
        ref(trace, 0, 10, reads=10_000)
        ref(trace, 1, 10, writes=100)
        ref(trace, 0, 11, reads=500)
        ref(trace, 1, 11, writes=20)
        report = advise(trace)
        assert [a.vpage for a in report.advice] == [10, 11]
        assert report.total_estimated_saving_us() > 0

    def test_top_limits_output(self):
        trace = TraceCollector()
        for vpage in range(12, 22):
            ref(trace, 0, vpage, reads=1000)
            ref(trace, 1, vpage, writes=50)
        assert len(advise(trace).top(3)) == 3


class TestOnRealWorkloads:
    def test_primes2_shared_divisors_advice_is_privatize(self):
        """The advisor rediscovers the paper's own fix."""
        trace, space = run_traced(
            Primes2(limit=20_000, private_divisors=False)
        )
        report = advise(trace, space=space)
        top = report.top(3)
        assert any(
            a.kind is AdviceKind.PRIVATIZE
            and a.object_name == "primes.output"
            for a in top
        ), [(a.kind, a.object_name) for a in top]

    def test_primes3_sieve_advice_is_pragma(self):
        trace, space = run_traced(Primes3.small())
        report = advise(trace, space=space)
        sieve_advice = [
            a for a in report.advice if a.object_name == "sieve.bits"
        ]
        assert sieve_advice
        assert all(
            a.kind is AdviceKind.MARK_NONCACHEABLE for a in sieve_advice
        )

    def test_tuned_primes2_draws_less_advice(self):
        shared_trace, shared_space = run_traced(
            Primes2(limit=20_000, private_divisors=False)
        )
        tuned_trace, tuned_space = run_traced(
            Primes2(limit=20_000, private_divisors=True)
        )
        shared_saving = advise(
            shared_trace, space=shared_space
        ).total_estimated_saving_us()
        tuned_saving = advise(
            tuned_trace, space=tuned_space
        ).total_estimated_saving_us()
        assert tuned_saving < shared_saving * 0.35

    def test_object_names_resolved(self):
        trace, space = run_traced(PlyTrace.small(), n_processors=4)
        report = advise(trace, space=space)
        for advice in report.advice:
            assert advice.object_name is not None
