"""The offline optimal-placement dynamic program."""

import pytest

from repro.analysis.optimal import (
    compare_to_optimal,
    compress_events,
    optimal_page_cost,
)
from repro.analysis.tracing import RefEvent, TraceCollector
from repro.core.policies import MoveThresholdPolicy
from repro.machine.config import MachineConfig, TimingParameters
from repro.machine.timing import MemoryLocation, TimingModel
from repro.sim.harness import run_once
from repro.workloads import small_workloads


def timing(page_words=1024) -> TimingModel:
    return TimingModel(TimingParameters(), page_words)


def event(cpu, reads=0, writes=0, vpage=1):
    return RefEvent(
        sequence=0,
        round_index=0,
        cpu=cpu,
        vpage=vpage,
        page_id=vpage,
        reads=reads,
        writes=writes,
        location=MemoryLocation.LOCAL,
        writable_data=True,
    )


class TestCompression:
    def test_consecutive_same_cpu_merged(self):
        blocks = compress_events(
            [event(0, reads=1), event(0, writes=2), event(1, reads=3)]
        )
        assert len(blocks) == 2
        assert blocks[0].reads == 1 and blocks[0].writes == 2
        assert blocks[1].cpu == 1

    def test_empty(self):
        assert compress_events([]) == []


class TestOptimalPageCost:
    def test_single_writer_chooses_local(self):
        """One CPU hammering a page: optimum ≈ copy-in + local refs."""
        t = timing()
        events = [event(0, writes=5000)]
        cost = optimal_page_cost(events, t)
        local_cost = 5000 * t.store_us(MemoryLocation.LOCAL)
        global_cost = 5000 * t.store_us(MemoryLocation.GLOBAL)
        assert cost < global_cost
        assert cost >= local_cost  # transition overhead on top

    def test_tiny_traffic_stays_global(self):
        """One reference is cheaper served global than paying a copy."""
        t = timing()
        cost = optimal_page_cost([event(0, reads=1)], t)
        assert cost == pytest.approx(t.fetch_us(MemoryLocation.GLOBAL))

    def test_ping_pong_pins_immediately_in_the_optimum(self):
        """Alternating writers: the optimum never migrates."""
        t = timing()
        events = [event(i % 2, writes=10) for i in range(20)]
        cost = optimal_page_cost(events, t)
        all_global = 200 * t.store_us(MemoryLocation.GLOBAL)
        assert cost == pytest.approx(all_global)

    def test_read_sharing_prefers_replication(self):
        """Heavy read sharing: the optimum replicates once per reader."""
        t = timing()
        events = [event(cpu, reads=5000) for cpu in range(3)]
        cost = optimal_page_cost(events, t)
        all_global = 15000 * t.fetch_us(MemoryLocation.GLOBAL)
        assert cost < all_global

    def test_empty_trace_is_free(self):
        assert optimal_page_cost([], timing()) == 0.0

    def test_write_then_heavy_reads_by_others(self):
        """A single init write shouldn't prevent later replication."""
        t = timing()
        events = [event(0, writes=10)] + [
            event(cpu, reads=5000) for cpu in (1, 2)
        ]
        cost = optimal_page_cost(events, t)
        all_global = (
            10 * t.store_us(MemoryLocation.GLOBAL)
            + 10000 * t.fetch_us(MemoryLocation.GLOBAL)
        )
        assert cost < all_global


class TestCompareToOptimal:
    @pytest.mark.parametrize("name", ["IMatMult", "Primes3", "Gfetch"])
    def test_policy_is_never_better_than_the_bound(self, name):
        workload = small_workloads()[name]
        trace = TraceCollector()
        result = run_once(
            workload,
            MoveThresholdPolicy(threshold=4),
            n_processors=4,
            observer=trace,
        )
        config = MachineConfig(n_processors=4)
        comparison = compare_to_optimal(
            trace,
            TimingModel(config.timing, config.page_size_words),
            result.system_time_us,
        )
        assert comparison.optimal_us > 0
        assert comparison.ratio >= 0.99  # optimal is a lower bound

    def test_threshold_policy_is_near_optimal_for_imatmult(self):
        """The paper's headline claim: the simple policy is close to the
        best any placement could do."""
        workload = small_workloads()["IMatMult"]
        trace = TraceCollector()
        result = run_once(
            workload,
            MoveThresholdPolicy(threshold=4),
            n_processors=4,
            observer=trace,
        )
        config = MachineConfig(n_processors=4)
        comparison = compare_to_optimal(
            trace,
            TimingModel(config.timing, config.page_size_words),
            result.system_time_us,
        )
        assert comparison.ratio < 2.0
