"""Adaptive policies and the declarative registry behind them."""

from dataclasses import dataclass
from typing import Optional

import pytest

from repro.core.policies import (
    MoveThresholdPolicy,
    Pragma,
    ReconsiderPolicy,
)
from repro.core.policies.adaptive import (
    AdaptiveThresholdPolicy,
    BanditPolicy,
    BandwidthAwarePolicy,
    parse_candidates,
)
from repro.core.policies.registry import (
    POLICY_ENTRIES,
    get_entry,
    parse_policy_arg,
)
from repro.core.state import AccessKind, PlacementDecision
from repro.errors import ConfigurationError
from repro.machine.config import MachineConfig
from repro.machine.machine import Machine
from repro.machine.memory import Frame, FrameKind
from repro.machine.timing import BUS_EDGE


@dataclass(frozen=True)
class FakePage:
    """Minimal PageLike for policy unit tests."""

    page_id: int
    writable_data: bool = True
    zero_fill: bool = True
    pragma: Optional[Pragma] = None

    @property
    def global_frame(self) -> Frame:
        return Frame(FrameKind.GLOBAL, None, self.page_id)


READ = AccessKind.READ
WRITE = AccessKind.WRITE
LOCAL = PlacementDecision.LOCAL
GLOBAL = PlacementDecision.GLOBAL
REMOTE = PlacementDecision.REMOTE


def pin(policy, page, moves):
    for _ in range(moves):
        policy.note_move(page)


class TestAdaptiveThresholdPolicy:
    def test_validation(self):
        with pytest.raises(ConfigurationError, match="backoff"):
            AdaptiveThresholdPolicy(backoff=0.5)
        with pytest.raises(ConfigurationError, match="max_interval_us"):
            AdaptiveThresholdPolicy(
                interval_us=1000.0, max_interval_us=500.0
            )
        with pytest.raises(ConfigurationError, match="contended_owners"):
            AdaptiveThresholdPolicy(contended_owners=1)
        with pytest.raises(ConfigurationError, match="negative"):
            AdaptiveThresholdPolicy(contended_threshold=-1)

    def test_pins_like_reconsider(self):
        policy = AdaptiveThresholdPolicy(threshold=2, interval_us=100.0)
        page = FakePage(1)
        pin(policy, page, 2)
        assert policy.cache_policy(page, WRITE, 0) is LOCAL
        policy.note_move(page)
        assert policy.cache_policy(page, READ, 0) is GLOBAL

    def test_pin_expires_and_invalidates(self):
        policy = AdaptiveThresholdPolicy(threshold=0, interval_us=100.0)
        page = FakePage(1)
        pin(policy, page, 1)
        assert policy.is_pinned(1)
        policy.tick(50.0)
        assert policy.is_pinned(1)  # not yet
        policy.tick(100.0)
        assert not policy.is_pinned(1)
        assert policy.take_invalidations() == [1]
        assert policy.take_invalidations() == []  # drained
        # The expired page's move history is forgiven entirely.
        assert policy.cache_policy(page, WRITE, 0) is LOCAL

    def test_backoff_grows_the_next_pin(self):
        policy = AdaptiveThresholdPolicy(
            threshold=0, interval_us=100.0, backoff=2.0
        )
        page = FakePage(1)
        pin(policy, page, 1)
        policy.tick(100.0)  # first pin lived interval_us
        assert not policy.is_pinned(1)
        pin(policy, page, 1)  # earns the pin back
        policy.tick(250.0)  # 150µs into a 200µs pin: still held
        assert policy.is_pinned(1)
        policy.tick(300.0)  # 200µs: the doubled lifetime expires
        assert not policy.is_pinned(1)

    def test_backoff_is_capped(self):
        policy = AdaptiveThresholdPolicy(
            threshold=0, interval_us=100.0, backoff=10.0,
            max_interval_us=300.0,
        )
        page = FakePage(1)
        pin(policy, page, 1)
        policy.tick(100.0)
        pin(policy, page, 1)
        # Second pin is capped at 300µs, not 1000µs.
        policy.tick(100.0 + 300.0)
        assert not policy.is_pinned(1)

    def test_contended_pages_pin_sooner(self):
        policy = AdaptiveThresholdPolicy(
            threshold=4, contended_owners=3, interval_us=1e9,
            max_interval_us=1e9,
        )
        page = FakePage(1)
        assert policy.effective_threshold(1) == 4
        for cpu in range(3):
            policy.note_owner(page, cpu)
        assert policy.effective_threshold(1) == 2  # half the budget
        pin(policy, page, 3)
        assert policy.is_pinned(1)
        # A privately-written page still gets the full budget.
        other = FakePage(2)
        pin(policy, other, 3)
        assert not policy.is_pinned(2)

    def test_move_counts_decay_for_unpinned_pages(self):
        policy = AdaptiveThresholdPolicy(threshold=4, interval_us=100.0)
        page = FakePage(1)
        pin(policy, page, 4)  # at the budget, not over it
        assert not policy.is_pinned(1)
        policy.tick(100.0)  # one interval: counts halve, 4 -> 2
        pin(policy, page, 2)  # 2 + 2 = 4: still within budget
        assert not policy.is_pinned(1)
        pin(policy, page, 1)
        assert policy.is_pinned(1)

    def test_backoff_one_degenerates_to_reconsider(self):
        adaptive = AdaptiveThresholdPolicy(
            threshold=0, interval_us=100.0, backoff=1.0,
            contended_owners=99,
        )
        reference = ReconsiderPolicy(threshold=0, interval_us=100.0)
        page = FakePage(1)
        for policy in (adaptive, reference):
            for round_ in range(3):
                pin(policy, page, 1)
                assert policy.is_pinned(1)
                policy.tick((round_ + 1) * 100.0)
                assert not policy.is_pinned(1)
                policy.take_invalidations()

    def test_freed_pages_forget_everything(self):
        policy = AdaptiveThresholdPolicy(threshold=0, interval_us=100.0)
        page = FakePage(1)
        policy.note_owner(page, 0)
        pin(policy, page, 1)
        policy.tick(100.0)  # next pin would be 200µs
        policy.note_page_freed(page)
        pin(policy, page, 1)
        policy.tick(200.0)  # a recycled id starts back at interval_us
        assert not policy.is_pinned(1)


class TestBandwidthAwarePolicy:
    def test_validation(self):
        with pytest.raises(ConfigurationError, match="congestion"):
            BandwidthAwarePolicy(congestion=1.5)
        with pytest.raises(ConfigurationError, match="window"):
            BandwidthAwarePolicy(window_us=0.0)

    def test_unbound_policy_is_plain_move_threshold(self):
        policy = BandwidthAwarePolicy(threshold=1)
        page = FakePage(1)
        policy.note_owner(page, 0)  # safe with no ledger
        assert policy.cache_policy(page, WRITE, 1) is LOCAL
        pin(policy, page, 2)
        assert policy.cache_policy(page, READ, 0) is GLOBAL

    @staticmethod
    def bound(congestion=0.5):
        policy = BandwidthAwarePolicy(threshold=99, congestion=congestion)
        policy.bind_machine(Machine(MachineConfig(n_processors=2)))
        return policy

    def test_uncongested_writes_migrate(self):
        policy = self.bound()
        page = FakePage(1)
        policy.note_owner(page, 0)
        assert policy.cache_policy(page, WRITE, 1) is LOCAL

    def test_congested_writes_avoid_migration(self):
        policy = self.bound()
        page = FakePage(1)
        policy.note_owner(page, 0)
        # Saturate the bus well past the congestion threshold.
        policy.contention.record(BUS_EDGE, 1e6, 0.0)
        assert policy.contention.utilization(BUS_EDGE) > 0.5
        decision = policy.cache_policy(page, WRITE, 1)
        assert decision in (REMOTE, GLOBAL)
        # Reads and the owner's own writes are unaffected.
        assert policy.cache_policy(page, READ, 1) is LOCAL
        assert policy.cache_policy(page, WRITE, 0) is LOCAL

    def test_migration_traffic_feeds_the_ledger(self):
        policy = self.bound()
        page = FakePage(1)
        policy.note_owner(page, 0)
        assert policy.contention.utilization(BUS_EDGE) == 0.0
        policy.note_owner(page, 1)  # an ownership transfer
        assert policy.contention.utilization(BUS_EDGE) > 0.0

    def test_ledger_decays_over_simulated_time(self):
        policy = self.bound()
        page = FakePage(1)
        policy.note_owner(page, 0)
        policy.contention.record(BUS_EDGE, 15_000.0, 0.0)
        assert policy.cache_policy(page, WRITE, 1) is not LOCAL
        # Many idle windows later the burst has faded away.
        policy.tick(50 * 20_000.0)
        assert policy.cache_policy(page, WRITE, 1) is LOCAL

    def test_pinned_pages_stay_global(self):
        policy = BandwidthAwarePolicy(threshold=0)
        page = FakePage(1)
        pin(policy, page, 1)
        assert policy.cache_policy(page, WRITE, 0) is GLOBAL


class TestParseCandidates:
    def test_comma_and_plus_separators(self):
        assert parse_candidates("0,2,4,8") == (0, 2, 4, 8)
        assert parse_candidates("0+2+4+8") == (0, 2, 4, 8)

    def test_errors(self):
        with pytest.raises(ConfigurationError, match="empty"):
            parse_candidates("")
        with pytest.raises(ConfigurationError, match="negative"):
            parse_candidates("0,-2")
        with pytest.raises(ConfigurationError, match="bad candidate"):
            parse_candidates("0,two")


class TestBanditPolicy:
    def test_validation(self):
        with pytest.raises(ConfigurationError, match="probability"):
            BanditPolicy(epsilon=2.0)
        with pytest.raises(ConfigurationError, match="epoch"):
            BanditPolicy(epoch_us=0.0)
        with pytest.raises(ConfigurationError, match="strategy"):
            BanditPolicy(strategy="thompson")

    def test_starts_nearest_the_paper_threshold(self):
        assert BanditPolicy().current_threshold("data") == 4
        assert (
            BanditPolicy(candidates="0,9").current_threshold("data") == 0
        )  # tie on distance resolves to the first candidate

    def test_plays_the_current_arm(self):
        policy = BanditPolicy(candidates="2")
        page = FakePage(1)
        pin(policy, page, 2)
        assert policy.cache_policy(page, WRITE, 0) is LOCAL
        policy.note_move(page)
        assert policy.cache_policy(page, READ, 0) is GLOBAL

    def test_same_seed_same_decisions(self):
        histories = []
        for _ in range(2):
            policy = BanditPolicy(epsilon=1.0, seed=7)
            for epoch in range(1, 20):
                policy.tick(epoch * 25_000.0)
            histories.append(list(policy.history))
        assert histories[0] == histories[1]
        different = BanditPolicy(epsilon=1.0, seed=8)
        for epoch in range(1, 20):
            different.tick(epoch * 25_000.0)
        assert different.history != histories[0]

    def test_arm_switch_unpins_and_invalidates_the_class(self):
        # With epsilon=1 every epoch explores; some early epoch must
        # move the data class off its starting arm.
        policy = BanditPolicy(epsilon=1.0, seed=7, candidates="0,8")
        data = FakePage(1, writable_data=True)
        degraded = FakePage(2, writable_data=True)
        pin(policy, data, 1)  # arm 0 pins on the first move
        policy.note_degraded(degraded)
        for epoch in range(1, 50):
            policy.tick(epoch * 25_000.0)
            if policy.current_threshold("data") != 0:
                break
        else:
            pytest.fail("exploration never left the starting arm")
        assert not policy.is_pinned(1)
        assert 1 in policy.take_invalidations()
        # The manager's degraded pin is not the arm's to revoke.
        assert policy.is_pinned(2)

    def test_ucb_explores_unpulled_arms_first(self):
        policy = BanditPolicy(strategy="ucb", seed=3)
        assert policy.current_threshold("data") == 4
        policy.tick(25_000.0)
        # The first epoch jumps to the first never-pulled arm...
        assert policy.current_threshold("data") == 0
        for epoch in range(2, 10):
            policy.tick(epoch * 25_000.0)
        # ...and with no machine bound (so no rewards, no pulls) UCB
        # has no reason to move again.
        assert policy.current_threshold("data") == 0

    def test_reward_loop_runs_through_own_metrics(self):
        policy = BanditPolicy(seed=1)
        policy.bind_machine(Machine(MachineConfig(n_processors=2)))
        policy.tick(25_000.0)
        assert "bandit_data_refs" in policy.metrics.as_dict()

    def test_byte_identical_results_per_seed(self):
        from repro.exp.spec import RunSpec

        def run(seed):
            spec = RunSpec(
                workload="Gfetch", quick=True, policy="bandit",
                policy_params=(("epsilon", 0.5), ("seed", seed)),
                n_processors=3,
            )
            return spec.run().to_json()

        assert run(7) == run(7)
        assert run(7) != run(8)


class TestPolicyRegistry:
    def test_unknown_name_lists_the_menu(self):
        with pytest.raises(ConfigurationError, match="move-threshold"):
            get_entry("nosuch")

    def test_unknown_parameter_lists_the_schema(self):
        entry = get_entry("bandit")
        with pytest.raises(ConfigurationError, match="epsilon"):
            entry.validate_params({"nosuch": 1})

    def test_parameter_types_are_enforced(self):
        entry = get_entry("adaptive-threshold")
        with pytest.raises(ConfigurationError, match="expects int"):
            entry.validate_params({"threshold": "four"})
        with pytest.raises(ConfigurationError, match="got bool"):
            entry.validate_params({"threshold": True})
        # ints widen to float parameters; nothing else coerces.
        assert entry.validate_params({"backoff": 3}) == {"backoff": 3.0}

    def test_spec_threshold_fills_the_schema(self):
        policy = get_entry("move-threshold").build(threshold=9)
        assert policy.threshold == 9
        # An explicit parameter wins over the spec-level threshold.
        policy = get_entry("move-threshold").build(
            threshold=9, params={"threshold": 2}
        )
        assert policy.threshold == 2

    def test_every_entry_round_trips_through_params(self):
        for name, entry in POLICY_ENTRIES.items():
            policy = entry.build()
            rebuilt = entry.build(params=policy.params())
            assert rebuilt.params() == policy.params(), name

    def test_legacy_call_shape_still_works(self):
        assert POLICY_ENTRIES["move-threshold"](3).threshold == 3

    def test_parse_policy_arg(self):
        name, params = parse_policy_arg("bandit:seed=7,epsilon=0.2")
        assert name == "bandit"
        assert params == {"seed": 7, "epsilon": 0.2}
        name, params = parse_policy_arg("bandit:candidates=0+2+4")
        assert params == {"candidates": "0+2+4"}
        assert parse_policy_arg("all-global") == ("all-global", {})
        with pytest.raises(ConfigurationError, match="expected name:key"):
            parse_policy_arg("bandit:seed")
        with pytest.raises(ConfigurationError, match="unknown policy"):
            parse_policy_arg("nosuch:seed=7")


class TestKeywordOnlyShims:
    def test_positional_threshold_warns(self):
        with pytest.warns(DeprecationWarning, match="keyword"):
            policy = MoveThresholdPolicy(3)
        assert policy.threshold == 3

    def test_positional_reconsider_args_warn(self):
        with pytest.warns(DeprecationWarning):
            policy = ReconsiderPolicy(2, 5_000.0)
        assert policy.params() == {"threshold": 2, "interval_us": 5_000.0}

    def test_positional_and_keyword_together_is_an_error(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(TypeError, match="multiple values"):
                MoveThresholdPolicy(3, threshold=4)

    def test_too_many_positionals_is_an_error(self):
        with pytest.raises(TypeError, match="positional"):
            MoveThresholdPolicy(3, 4)
