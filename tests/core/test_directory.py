"""Directory entries: state invariants and ownership-move detection."""

import pytest

from repro.core.directory import DirectoryEntry, PageDirectory
from repro.core.state import PageState
from repro.errors import ProtocolError
from repro.machine.memory import Frame, FrameKind
from repro.machine.protection import PROT_READ, PROT_READ_WRITE


def gframe(index: int = 0) -> Frame:
    return Frame(FrameKind.GLOBAL, None, index)


def lframe(cpu: int, index: int = 0) -> Frame:
    return Frame(FrameKind.LOCAL, cpu, index)


def entry(**kwargs) -> DirectoryEntry:
    return DirectoryEntry(page_id=1, global_frame=gframe(), **kwargs)


class TestOwnershipMoves:
    def test_first_owner_is_not_a_move(self):
        e = entry()
        assert e.note_ownership(0) is False
        assert e.move_count == 0

    def test_same_owner_again_is_not_a_move(self):
        e = entry()
        e.note_ownership(0)
        assert e.note_ownership(0) is False
        assert e.move_count == 0

    def test_transfer_is_a_move(self):
        e = entry()
        e.note_ownership(0)
        assert e.note_ownership(1) is True
        assert e.move_count == 1

    def test_read_interlude_still_counts_as_move(self):
        """A writes, B reads (page goes RO), B writes: still a transfer."""
        e = entry()
        e.note_ownership(0)
        e.owner = None  # page went READ_ONLY in between
        assert e.note_ownership(1) is True

    def test_ping_pong_counts_every_transfer(self):
        e = entry()
        for i in range(6):
            e.note_ownership(i % 2)
        assert e.move_count == 5


class TestFrameSelection:
    def test_frame_for_prefers_local_copy(self):
        e = entry()
        e.local_copies[2] = lframe(2)
        assert e.frame_for(2) == lframe(2)
        assert e.frame_for(0) == gframe()

    def test_authoritative_frame_global_when_clean(self):
        e = entry()
        e.state = PageState.GLOBAL_WRITABLE
        assert e.authoritative_frame() == gframe()

    def test_authoritative_frame_local_when_dirty(self):
        e = entry()
        e.state = PageState.LOCAL_WRITABLE
        e.owner = 1
        e.local_copies[1] = lframe(1)
        assert e.authoritative_frame() == lframe(1)

    def test_authoritative_frame_requires_owner_when_lw(self):
        e = entry()
        e.state = PageState.LOCAL_WRITABLE
        with pytest.raises(ProtocolError):
            e.authoritative_frame()


class TestInvariants:
    def test_untouched_must_be_bare(self):
        e = entry()
        e.check_invariants()
        e.local_copies[0] = lframe(0)
        with pytest.raises(ProtocolError):
            e.check_invariants()

    def test_read_only_needs_a_copy(self):
        e = entry()
        e.state = PageState.READ_ONLY
        with pytest.raises(ProtocolError):
            e.check_invariants()

    def test_read_only_forbids_owner(self):
        e = entry()
        e.state = PageState.READ_ONLY
        e.local_copies[0] = lframe(0)
        e.owner = 0
        with pytest.raises(ProtocolError):
            e.check_invariants()

    def test_read_only_forbids_writable_mappings(self):
        e = entry()
        e.state = PageState.READ_ONLY
        e.local_copies[0] = lframe(0)
        e.record_mapping(0, 10, PROT_READ_WRITE, lframe(0))
        with pytest.raises(ProtocolError):
            e.check_invariants()

    def test_read_only_mapping_must_point_at_the_copy(self):
        e = entry()
        e.state = PageState.READ_ONLY
        e.local_copies[0] = lframe(0)
        e.record_mapping(0, 10, PROT_READ, gframe())
        with pytest.raises(ProtocolError):
            e.check_invariants()

    def test_read_only_mapping_without_copy_rejected(self):
        e = entry()
        e.state = PageState.READ_ONLY
        e.local_copies[0] = lframe(0)
        e.record_mapping(1, 10, PROT_READ, gframe())
        with pytest.raises(ProtocolError):
            e.check_invariants()

    def test_read_only_valid_shape_passes(self):
        e = entry()
        e.state = PageState.READ_ONLY
        e.local_copies[0] = lframe(0)
        e.local_copies[1] = lframe(1)
        e.record_mapping(0, 10, PROT_READ, lframe(0))
        e.check_invariants()

    def test_local_writable_needs_owner_and_exactly_one_copy(self):
        e = entry()
        e.state = PageState.LOCAL_WRITABLE
        with pytest.raises(ProtocolError):
            e.check_invariants()
        e.owner = 1
        e.local_copies[1] = lframe(1)
        e.check_invariants()
        e.local_copies[0] = lframe(0)
        with pytest.raises(ProtocolError):
            e.check_invariants()

    def test_local_writable_forbids_foreign_mappings(self):
        e = entry()
        e.state = PageState.LOCAL_WRITABLE
        e.owner = 1
        e.local_copies[1] = lframe(1)
        e.record_mapping(0, 10, PROT_READ, gframe())
        with pytest.raises(ProtocolError):
            e.check_invariants()

    def test_global_writable_forbids_copies_and_owner(self):
        e = entry()
        e.state = PageState.GLOBAL_WRITABLE
        e.check_invariants()
        e.owner = 2
        with pytest.raises(ProtocolError):
            e.check_invariants()
        e.owner = None
        e.local_copies[1] = lframe(1)
        with pytest.raises(ProtocolError):
            e.check_invariants()

    def test_global_writable_mappings_must_use_global_frame(self):
        e = entry()
        e.state = PageState.GLOBAL_WRITABLE
        e.record_mapping(0, 10, PROT_READ_WRITE, gframe())
        e.check_invariants()
        e.record_mapping(1, 10, PROT_READ, lframe(1))
        with pytest.raises(ProtocolError):
            e.check_invariants()

    def test_copy_on_wrong_node_rejected(self):
        e = entry()
        e.state = PageState.READ_ONLY
        e.local_copies[0] = lframe(1)  # cpu 0 holding cpu 1's frame
        with pytest.raises(ProtocolError):
            e.check_invariants()

    def test_global_frame_must_be_global(self):
        e = DirectoryEntry(page_id=1, global_frame=lframe(0))
        with pytest.raises(ProtocolError):
            e.check_invariants()


class TestPageDirectory:
    def test_add_get_remove(self):
        directory = PageDirectory()
        e = directory.add(1, gframe())
        assert directory.get(1) is e
        assert 1 in directory
        assert len(directory) == 1
        assert directory.remove(1) is e
        assert 1 not in directory

    def test_double_add_rejected(self):
        directory = PageDirectory()
        directory.add(1, gframe())
        with pytest.raises(ProtocolError):
            directory.add(1, gframe(1))

    def test_get_missing_rejected(self):
        with pytest.raises(ProtocolError):
            PageDirectory().get(7)

    def test_remove_missing_rejected(self):
        with pytest.raises(ProtocolError):
            PageDirectory().remove(7)

    def test_entries_iteration(self):
        directory = PageDirectory()
        directory.add(1, gframe(0))
        directory.add(2, gframe(1))
        assert {e.page_id for e in directory.entries()} == {1, 2}


class TestStructuredProtocolErrors:
    """Invariant failures carry the page id and full mapping table."""

    def _broken_entry(self):
        e = entry()
        e.state = PageState.READ_ONLY  # no copies: invariant broken
        e.record_mapping(0, 10, PROT_READ, gframe())
        e.record_mapping(1, 11, PROT_READ, gframe())
        return e

    def test_error_carries_page_id(self):
        with pytest.raises(ProtocolError) as exc:
            self._broken_entry().check_invariants()
        assert exc.value.page_id == 1

    def test_error_carries_full_mapping_table(self):
        with pytest.raises(ProtocolError) as exc:
            self._broken_entry().check_invariants()
        mappings = exc.value.mappings
        assert set(mappings) == {0, 1}
        assert mappings[0]["vpage"] == 10
        assert mappings[1]["vpage"] == 11
        assert "protection" in mappings[0]
        assert "frame" in mappings[0]

    def test_error_carries_state_snapshot(self):
        with pytest.raises(ProtocolError) as exc:
            self._broken_entry().check_invariants()
        details = exc.value.details
        assert details["state"] == PageState.READ_ONLY.value
        assert details["owner"] is None
        assert details["copy_holders"] == []
        assert "move_count" in details

    def test_as_record_is_json_shaped(self):
        import json

        with pytest.raises(ProtocolError) as exc:
            self._broken_entry().check_invariants()
        record = exc.value.as_record()
        assert record["page_id"] == 1
        json.dumps(record)  # fully serializable

    def test_healthy_entry_raises_nothing(self):
        e = entry()
        e.state = PageState.READ_ONLY
        e.local_copies[0] = lframe(0)
        e.check_invariants()
