"""Tables 1 and 2, cell by cell, against the paper's text."""

import pytest

from repro.core.state import AccessKind, PageState, PlacementDecision
from repro.core.transitions import (
    READ_TABLE,
    WRITE_TABLE,
    Cleanup,
    StateKey,
    classify_state,
    first_touch_spec,
    lookup,
)
from repro.errors import ProtocolError

L = PlacementDecision.LOCAL
G = PlacementDecision.GLOBAL
RO = StateKey.READ_ONLY
GW = StateKey.GLOBAL_WRITABLE
LW_OWN = StateKey.LOCAL_WRITABLE_OWN
LW_OTHER = StateKey.LOCAL_WRITABLE_OTHER


class TestTable1ReadRequests:
    """Each cell transcribed from the paper's Table 1."""

    @pytest.mark.parametrize(
        "decision, state, cleanup, copy, new_state",
        [
            (L, RO, Cleanup.NONE, True, PageState.READ_ONLY),
            (L, GW, Cleanup.UNMAP_ALL, True, PageState.READ_ONLY),
            (L, LW_OWN, Cleanup.NONE, False, PageState.LOCAL_WRITABLE),
            (L, LW_OTHER, Cleanup.SYNC_FLUSH_OTHER, True, PageState.READ_ONLY),
            (G, RO, Cleanup.FLUSH_ALL, False, PageState.GLOBAL_WRITABLE),
            (G, GW, Cleanup.NONE, False, PageState.GLOBAL_WRITABLE),
            (G, LW_OWN, Cleanup.SYNC_FLUSH_OWN, False, PageState.GLOBAL_WRITABLE),
            (G, LW_OTHER, Cleanup.SYNC_FLUSH_OTHER, False,
             PageState.GLOBAL_WRITABLE),
        ],
    )
    def test_cell(self, decision, state, cleanup, copy, new_state):
        spec = READ_TABLE[(decision, state)]
        assert spec.cleanup is cleanup
        assert spec.copy_to_local is copy
        assert spec.new_state is new_state

    def test_table_is_complete(self):
        assert len(READ_TABLE) == 8


class TestTable2WriteRequests:
    """Each cell transcribed from the paper's Table 2."""

    @pytest.mark.parametrize(
        "decision, state, cleanup, copy, new_state",
        [
            (L, RO, Cleanup.FLUSH_OTHER, True, PageState.LOCAL_WRITABLE),
            (L, GW, Cleanup.UNMAP_ALL, True, PageState.LOCAL_WRITABLE),
            (L, LW_OWN, Cleanup.NONE, False, PageState.LOCAL_WRITABLE),
            (L, LW_OTHER, Cleanup.SYNC_FLUSH_OTHER, True,
             PageState.LOCAL_WRITABLE),
            (G, RO, Cleanup.FLUSH_ALL, False, PageState.GLOBAL_WRITABLE),
            (G, GW, Cleanup.NONE, False, PageState.GLOBAL_WRITABLE),
            (G, LW_OWN, Cleanup.SYNC_FLUSH_OWN, False,
             PageState.GLOBAL_WRITABLE),
            (G, LW_OTHER, Cleanup.SYNC_FLUSH_OTHER, False,
             PageState.GLOBAL_WRITABLE),
        ],
    )
    def test_cell(self, decision, state, cleanup, copy, new_state):
        spec = WRITE_TABLE[(decision, state)]
        assert spec.cleanup is cleanup
        assert spec.copy_to_local is copy
        assert spec.new_state is new_state

    def test_table_is_complete(self):
        assert len(WRITE_TABLE) == 8


class TestStructuralProperties:
    """Cross-cutting facts the tables must satisfy."""

    def test_global_rows_identical_in_both_tables(self):
        """A GLOBAL decision acts the same for reads and writes."""
        for state in StateKey:
            assert READ_TABLE[(G, state)] == WRITE_TABLE[(G, state)]

    def test_global_decisions_never_copy_to_local(self):
        for table in (READ_TABLE, WRITE_TABLE):
            for state in StateKey:
                assert not table[(G, state)].copy_to_local

    def test_global_decisions_always_end_global_writable(self):
        for table in (READ_TABLE, WRITE_TABLE):
            for state in StateKey:
                assert (
                    table[(G, state)].new_state is PageState.GLOBAL_WRITABLE
                )

    def test_leaving_local_writable_always_syncs(self):
        """A dirty local copy must never be dropped without a sync."""
        for table in (READ_TABLE, WRITE_TABLE):
            for decision in (L, G):
                for state in (LW_OWN, LW_OTHER):
                    spec = table[(decision, state)]
                    if spec.new_state is PageState.LOCAL_WRITABLE and (
                        state is LW_OWN
                    ):
                        continue  # owner keeps the dirty copy
                    if state is LW_OTHER and spec.new_state is (
                        PageState.LOCAL_WRITABLE
                    ):
                        assert spec.cleanup is Cleanup.SYNC_FLUSH_OTHER
                    else:
                        assert spec.cleanup in (
                            Cleanup.SYNC_FLUSH_OWN,
                            Cleanup.SYNC_FLUSH_OTHER,
                            Cleanup.NONE,
                        )

    def test_unmap_only_used_for_global_writable_pages(self):
        """'unmap' drops mappings only; only GW pages have no copies."""
        for table in (READ_TABLE, WRITE_TABLE):
            for (decision, state), spec in table.items():
                if spec.cleanup is Cleanup.UNMAP_ALL:
                    assert state is GW

    def test_flush_only_used_for_read_only_pages(self):
        """Plain 'flush' (no sync) is safe only when global is current."""
        for table in (READ_TABLE, WRITE_TABLE):
            for (decision, state), spec in table.items():
                if spec.cleanup in (Cleanup.FLUSH_ALL, Cleanup.FLUSH_OTHER):
                    assert state is RO


class TestLookupAndClassify:
    def test_lookup_dispatches_by_kind(self):
        assert lookup(AccessKind.READ, L, RO) is READ_TABLE[(L, RO)]
        assert lookup(AccessKind.WRITE, L, RO) is WRITE_TABLE[(L, RO)]

    def test_classify_read_only(self):
        assert classify_state(PageState.READ_ONLY, None, 0) is RO

    def test_classify_global_writable(self):
        assert classify_state(PageState.GLOBAL_WRITABLE, None, 0) is GW

    def test_classify_local_writable_own_vs_other(self):
        assert classify_state(PageState.LOCAL_WRITABLE, 2, 2) is LW_OWN
        assert classify_state(PageState.LOCAL_WRITABLE, 2, 0) is LW_OTHER

    def test_classify_local_writable_needs_owner(self):
        with pytest.raises(ProtocolError):
            classify_state(PageState.LOCAL_WRITABLE, None, 0)

    def test_classify_untouched_rejected(self):
        with pytest.raises(ProtocolError):
            classify_state(PageState.UNTOUCHED, None, 0)


class TestFirstTouch:
    def test_local_read_replicates(self):
        spec = first_touch_spec(AccessKind.READ, L)
        assert spec.copy_to_local and spec.new_state is PageState.READ_ONLY

    def test_local_write_migrates(self):
        spec = first_touch_spec(AccessKind.WRITE, L)
        assert spec.copy_to_local
        assert spec.new_state is PageState.LOCAL_WRITABLE

    def test_global_decision_fills_global(self):
        for kind in AccessKind:
            spec = first_touch_spec(kind, G)
            assert not spec.copy_to_local
            assert spec.new_state is PageState.GLOBAL_WRITABLE

    def test_first_touch_never_cleans_up(self):
        for kind in AccessKind:
            for decision in (L, G):
                assert first_touch_spec(kind, decision).cleanup is Cleanup.NONE

    def test_describe_matches_paper_vocabulary(self):
        spec = WRITE_TABLE[(L, LW_OTHER)]
        cleanup, copy, state = spec.describe()
        assert cleanup == "sync&flush other"
        assert copy == "copy to local"
        assert state == "local-writable"


class TestTotalitySweep:
    """Property sweep: every reachable request shape resolves to a cell.

    All (PageState, owner-relation) pairs flow through classify_state,
    and every resulting column crossed with every (kind, decision) must
    resolve through lookup -- no combination may raise KeyError.
    """

    #: owner-relation cases: (owner, requesting cpu).
    OWNER_RELATIONS = [(None, 0), (0, 0), (0, 1)]

    @pytest.mark.parametrize("state", list(PageState))
    @pytest.mark.parametrize("owner, cpu", OWNER_RELATIONS)
    @pytest.mark.parametrize("kind", list(AccessKind))
    @pytest.mark.parametrize("decision", [L, G])
    def test_classify_then_lookup_is_total(
        self, state, owner, cpu, kind, decision
    ):
        try:
            key = classify_state(state, owner, cpu)
        except ProtocolError:
            # The only deliberate refusals: untouched pages (first-touch
            # path) and an ownerless LOCAL_WRITABLE page (corruption).
            assert state is PageState.UNTOUCHED or (
                state is PageState.LOCAL_WRITABLE and owner is None
            )
            if state is PageState.UNTOUCHED:
                spec = first_touch_spec(kind, decision)
                assert spec.cleanup is Cleanup.NONE
            return
        spec = lookup(kind, decision, key)  # must not raise KeyError
        assert spec.new_state in (
            PageState.READ_ONLY,
            PageState.LOCAL_WRITABLE,
            PageState.GLOBAL_WRITABLE,
        )

    def test_classify_never_raises_keyerror(self):
        for state in PageState:
            for owner, cpu in self.OWNER_RELATIONS:
                try:
                    classify_state(state, owner, cpu)
                except ProtocolError:
                    pass  # the deliberate refusals, asserted above
