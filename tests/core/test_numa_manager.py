"""NUMA manager scenarios: replication, migration, pinning, eviction."""

import pytest

from repro.core.state import AccessKind, PageState
from repro.core.policies import (
    AllGlobalEverythingPolicy,
    AllLocalPolicy,
    MoveThresholdPolicy,
)
from repro.machine.memory import FrameKind
from repro.machine.protection import PROT_READ
from repro.vm.vm_object import shared_object, text_object
from tests.conftest import make_rig


def map_shared(rig, name="data", pages=4):
    region = rig.space.map_object(shared_object(name, pages))
    return region


def entry_for(rig, region, offset=0):
    page = region.vm_object.resident_page(offset)
    assert page is not None
    return rig.numa.directory.get(page.page_id)


def touch(rig, region, cpu, kind, offset=0):
    return rig.faults.handle(cpu, region.vpage_at(offset), kind)


class TestFirstTouch:
    def test_first_read_replicates_locally(self, rig):
        region = map_shared(rig)
        frame = touch(rig, region, cpu=1, kind=AccessKind.READ)
        assert frame.kind is FrameKind.LOCAL and frame.node == 1
        e = entry_for(rig, region)
        assert e.state is PageState.READ_ONLY
        assert rig.numa.stats.zero_fills == 1

    def test_first_write_goes_local_writable(self, rig):
        region = map_shared(rig)
        frame = touch(rig, region, cpu=2, kind=AccessKind.WRITE)
        assert frame.kind is FrameKind.LOCAL and frame.node == 2
        e = entry_for(rig, region)
        assert e.state is PageState.LOCAL_WRITABLE and e.owner == 2

    def test_zero_fill_is_lazy_not_into_global(self, rig):
        """The paper zero-fills into the memory the policy chose."""
        region = map_shared(rig)
        touch(rig, region, cpu=1, kind=AccessKind.WRITE)
        assert rig.numa.stats.zero_fills == 1
        assert rig.numa.stats.copies_to_local == 0  # no copy, direct fill

    def test_global_policy_first_touch_fills_global(self):
        rig = make_rig(policy=AllGlobalEverythingPolicy())
        region = map_shared(rig)
        frame = touch(rig, region, cpu=1, kind=AccessKind.WRITE)
        assert frame.kind is FrameKind.GLOBAL
        assert entry_for(rig, region).state is PageState.GLOBAL_WRITABLE


class TestReplication:
    def test_readers_each_get_a_copy(self, rig):
        region = map_shared(rig)
        for cpu in range(3):
            frame = touch(rig, region, cpu=cpu, kind=AccessKind.READ)
            assert frame.node == cpu
        e = entry_for(rig, region)
        assert set(e.local_copies) == {0, 1, 2}
        assert e.state is PageState.READ_ONLY

    def test_replicated_content_is_coherent(self, rig):
        """Every replica holds the same data version."""
        region = map_shared(rig)
        for cpu in range(3):
            touch(rig, region, cpu=cpu, kind=AccessKind.READ)
        e = entry_for(rig, region)
        tokens = {
            rig.machine.memory.read_token(f) for f in e.local_copies.values()
        }
        tokens.add(rig.machine.memory.read_token(e.global_frame))
        assert len(tokens) == 1

    def test_text_pages_replicate_from_global_content(self, rig):
        region = rig.space.map_object(text_object("text", 2))
        frame = touch(rig, region, cpu=1, kind=AccessKind.READ)
        assert frame.node == 1
        assert rig.numa.stats.copies_to_local == 1
        assert rig.numa.stats.zero_fills == 0

    def test_writable_but_unwritten_page_is_replicated(self, rig):
        """The IMatMult-inputs behaviour the paper highlights."""
        region = map_shared(rig)
        touch(rig, region, cpu=0, kind=AccessKind.WRITE)  # initialized once
        for cpu in (1, 2, 3):
            touch(rig, region, cpu=cpu, kind=AccessKind.READ)
        e = entry_for(rig, region)
        assert e.state is PageState.READ_ONLY
        assert len(e.local_copies) >= 3


class TestMigration:
    def test_write_after_foreign_write_moves_ownership(self, rig):
        region = map_shared(rig)
        touch(rig, region, cpu=0, kind=AccessKind.WRITE)
        touch(rig, region, cpu=1, kind=AccessKind.WRITE)
        e = entry_for(rig, region)
        assert e.owner == 1
        assert e.move_count == 1
        assert rig.numa.stats.syncs == 1  # old copy synced back

    def test_migration_preserves_content(self, rig):
        region = map_shared(rig)
        touch(rig, region, cpu=0, kind=AccessKind.WRITE)
        e = entry_for(rig, region)
        rig.machine.memory.write_token(e.local_copies[0], 77)
        touch(rig, region, cpu=1, kind=AccessKind.WRITE)
        assert rig.machine.memory.read_token(e.local_copies[1]) == 77

    def test_reader_of_dirty_page_triggers_sync(self, rig):
        region = map_shared(rig)
        touch(rig, region, cpu=0, kind=AccessKind.WRITE)
        e = entry_for(rig, region)
        rig.machine.memory.write_token(e.local_copies[0], 5)
        frame = touch(rig, region, cpu=1, kind=AccessKind.READ)
        assert rig.machine.memory.read_token(frame) == 5
        assert e.state is PageState.READ_ONLY

    def test_owner_read_after_mapping_loss_is_no_action(self, rig):
        region = map_shared(rig)
        touch(rig, region, cpu=0, kind=AccessKind.WRITE)
        page = region.vm_object.resident_page(0)
        rig.numa.remove_all_mappings(page, acting_cpu=0)
        copies_before = rig.numa.stats.copies_to_local
        frame = touch(rig, region, cpu=0, kind=AccessKind.READ)
        assert frame.node == 0
        assert entry_for(rig, region).state is PageState.LOCAL_WRITABLE
        assert rig.numa.stats.copies_to_local == copies_before

    def test_read_only_upgrade_to_writer_flushes_others(self, rig):
        region = map_shared(rig)
        for cpu in range(3):
            touch(rig, region, cpu=cpu, kind=AccessKind.READ)
        touch(rig, region, cpu=1, kind=AccessKind.WRITE)
        e = entry_for(rig, region)
        assert e.state is PageState.LOCAL_WRITABLE
        assert set(e.local_copies) == {1}
        assert rig.numa.stats.flushes == 2


class TestPinning:
    def test_ping_pong_pins_after_threshold(self, rig):
        region = map_shared(rig)
        for i in range(12):
            touch(rig, region, cpu=i % 2, kind=AccessKind.WRITE)
        e = entry_for(rig, region)
        assert e.state is PageState.GLOBAL_WRITABLE
        policy = rig.policy
        page = region.vm_object.resident_page(0)
        assert policy.is_pinned(page.page_id)
        # Threshold 4: the page made 5 moves (count > threshold) then pinned.
        assert policy.move_count(page.page_id) == 5

    def test_pinned_page_serves_everyone_from_global(self, rig):
        region = map_shared(rig)
        for i in range(12):
            touch(rig, region, cpu=i % 2, kind=AccessKind.WRITE)
        frame = touch(rig, region, cpu=3, kind=AccessKind.READ)
        assert frame.kind is FrameKind.GLOBAL

    def test_pin_survives_reads(self, rig):
        region = map_shared(rig)
        for i in range(12):
            touch(rig, region, cpu=i % 2, kind=AccessKind.WRITE)
        for cpu in range(4):
            touch(rig, region, cpu=cpu, kind=AccessKind.READ)
        assert entry_for(rig, region).state is PageState.GLOBAL_WRITABLE

    def test_freeing_resets_the_pin(self, rig):
        region = map_shared(rig)
        for i in range(12):
            touch(rig, region, cpu=i % 2, kind=AccessKind.WRITE)
        page = region.vm_object.resident_page(0)
        rig.pool.free(page, cpu=0)
        assert not rig.policy.is_pinned(page.page_id)
        # A new page at the same offset starts cacheable again.
        frame = touch(rig, region, cpu=1, kind=AccessKind.WRITE)
        assert frame.kind is FrameKind.LOCAL


class TestEvictionAndFallback:
    def test_local_exhaustion_falls_back_to_global(self):
        rig = make_rig(n_processors=2, local_pages_per_cpu=2, global_pages=32)
        region = map_shared(rig, pages=8)
        # Two pages fill cpu 0's local memory; they stay dirty (evicting
        # them requires a sync), then further pages must evict or go global.
        for offset in range(8):
            touch(rig, region, cpu=0, kind=AccessKind.WRITE, offset=offset)
        stats = rig.numa.stats
        assert stats.evictions + stats.local_memory_fallbacks >= 6

    def test_eviction_syncs_dirty_pages(self):
        rig = make_rig(n_processors=2, local_pages_per_cpu=1, global_pages=32)
        region = map_shared(rig, pages=2)
        touch(rig, region, cpu=0, kind=AccessKind.WRITE, offset=0)
        e0 = entry_for(rig, region, 0)
        rig.machine.memory.write_token(e0.local_copies[0], 9)
        touch(rig, region, cpu=0, kind=AccessKind.WRITE, offset=1)
        # page 0 was evicted: content synced to global, state GW.
        assert e0.state is PageState.GLOBAL_WRITABLE
        assert rig.machine.memory.read_token(e0.global_frame) == 9
        assert rig.numa.stats.evictions == 1

    def test_eviction_never_victimizes_the_requested_page(self):
        rig = make_rig(n_processors=1, local_pages_per_cpu=1, global_pages=32)
        region = map_shared(rig, pages=1)
        touch(rig, region, cpu=0, kind=AccessKind.WRITE, offset=0)
        # Re-request the only resident page; nothing to evict but itself.
        frame = touch(rig, region, cpu=0, kind=AccessKind.READ, offset=0)
        assert frame.node == 0
        assert rig.numa.stats.evictions == 0


class TestFreeing:
    def test_free_drops_mappings_immediately(self, rig):
        region = map_shared(rig)
        touch(rig, region, cpu=0, kind=AccessKind.WRITE)
        page = region.vm_object.resident_page(0)
        rig.pool.free(page, cpu=0)
        assert rig.machine.cpu(0).mmu.lookup(region.vpage_at(0)) is None

    def test_free_is_lazy_about_local_frames(self, rig):
        region = map_shared(rig)
        touch(rig, region, cpu=0, kind=AccessKind.WRITE)
        in_use_before = rig.machine.memory.local_in_use(0)
        page = region.vm_object.resident_page(0)
        rig.pool.free(page, cpu=0)
        # The local frame is still held until the cleanup syncs.
        assert rig.machine.memory.local_in_use(0) == in_use_before
        rig.pool.drain_cleanups(cpu=0)
        assert rig.machine.memory.local_in_use(0) == in_use_before - 1

    def test_allocation_completes_pending_cleanup(self, rig):
        region = map_shared(rig, pages=2)
        touch(rig, region, cpu=0, kind=AccessKind.WRITE, offset=0)
        page = region.vm_object.resident_page(0)
        rig.pool.free(page, cpu=0)
        assert rig.pool.pending_cleanups == 1
        touch(rig, region, cpu=0, kind=AccessKind.WRITE, offset=1)
        assert rig.pool.pending_cleanups == 0


class TestMappingProtections:
    def test_read_fault_maps_provisionally_read_only(self, rig):
        """The min/max-protection extension: map with strictest rights."""
        region = map_shared(rig)
        touch(rig, region, cpu=0, kind=AccessKind.READ)
        entry = rig.machine.cpu(0).mmu.lookup(region.vpage_at(0))
        assert entry.protection == PROT_READ

    def test_write_fault_upgrades_mapping(self, rig):
        region = map_shared(rig)
        touch(rig, region, cpu=0, kind=AccessKind.READ)
        touch(rig, region, cpu=0, kind=AccessKind.WRITE)
        entry = rig.machine.cpu(0).mmu.lookup(region.vpage_at(0))
        assert entry.protection.writable

    def test_always_local_policy_never_uses_global(self):
        rig = make_rig(n_processors=1, policy=AllLocalPolicy())
        region = map_shared(rig)
        for offset in range(4):
            frame = touch(
                rig, region, cpu=0, kind=AccessKind.WRITE, offset=offset
            )
            assert frame.kind is FrameKind.LOCAL


class TestStatsAndIntrospection:
    def test_location_for_tracks_state(self, rig):
        region = map_shared(rig)
        touch(rig, region, cpu=0, kind=AccessKind.WRITE)
        page = region.vm_object.resident_page(0)
        from repro.machine.timing import MemoryLocation

        assert rig.numa.location_for(page, 0) is MemoryLocation.LOCAL
        assert rig.numa.location_for(page, 1) is MemoryLocation.GLOBAL

    def test_resident_pages_tracking(self, rig):
        region = map_shared(rig, pages=3)
        for offset in range(3):
            touch(rig, region, cpu=1, kind=AccessKind.READ, offset=offset)
        assert len(rig.numa.resident_pages(1)) == 3
        assert rig.numa.resident_pages(0) == set()

    def test_check_all_invariants_clean_run(self, rig):
        region = map_shared(rig)
        for i in range(8):
            touch(rig, region, cpu=i % 3, kind=AccessKind.WRITE)
        rig.numa.check_all_invariants()
