"""NUMAStats bookkeeping and the exception hierarchy."""

import pytest

from repro import errors
from repro.core.state import AccessKind
from repro.core.stats import NUMAStats


class TestNUMAStats:
    def test_fresh_stats_are_all_zero(self):
        stats = NUMAStats()
        assert stats.total_faults() == 0
        assert stats.total_page_copies() == 0
        assert all(value == 0 for value in stats.as_dict().values())

    def test_fault_counters_by_kind(self):
        stats = NUMAStats()
        stats.faults[AccessKind.READ] += 3
        stats.faults[AccessKind.WRITE] += 2
        assert stats.total_faults() == 5
        flat = stats.as_dict()
        assert flat["read_faults"] == 3
        assert flat["write_faults"] == 2

    def test_total_page_copies(self):
        stats = NUMAStats()
        stats.copies_to_local = 4
        stats.syncs = 3
        assert stats.total_page_copies() == 7

    def test_as_dict_covers_every_counter(self):
        stats = NUMAStats()
        flat = stats.as_dict()
        expected_keys = {
            "read_faults",
            "write_faults",
            "zero_fills",
            "global_zero_fills",
            "copies_to_local",
            "syncs",
            "flushes",
            "unmaps",
            "moves",
            "remote_mappings",
            "local_memory_fallbacks",
            "evictions",
            "pages_freed",
            "free_syncs",
            "transfer_retries",
            "degraded_pins",
            "frames_offlined",
        }
        assert set(flat) == expected_keys


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            errors.ConfigurationError,
            errors.OutOfMemoryError,
            errors.MappingError,
            errors.ProtocolError,
            errors.SimulationError,
        ],
    )
    def test_all_errors_derive_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)
        with pytest.raises(errors.ReproError):
            raise exc("boom")

    def test_segfault_is_a_simulation_error(self):
        from repro.vm.address_space import SegmentationFault

        assert issubclass(SegmentationFault, errors.SimulationError)

    def test_protection_violation_is_a_simulation_error(self):
        from repro.vm.fault import ProtectionViolation

        assert issubclass(ProtectionViolation, errors.SimulationError)

    def test_mmu_fault_is_not_an_error(self):
        """Faults are control flow, not failures."""
        from repro.machine.mmu import MMUFault

        assert not issubclass(MMUFault, errors.ReproError)
