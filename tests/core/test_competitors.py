"""The alternative policies of Section 5's related-work comparison."""

import pytest

from repro.core.policies import (
    DecayPolicy,
    MigrationOnlyPolicy,
    MoveThresholdPolicy,
    ReplicationOnlyPolicy,
)
from repro.core.state import AccessKind, PageState
from repro.machine.memory import FrameKind
from repro.sim.harness import run_once
from repro.vm.vm_object import shared_object
from repro.workloads.handoff import Handoff
from repro.workloads.imatmult import IMatMult
from tests.conftest import make_rig


def drive(policy, accesses, pages=1):
    rig = make_rig(n_processors=3, policy=policy)
    region = rig.space.map_object(shared_object("d", pages))
    frames = []
    for cpu, is_write in accesses:
        kind = AccessKind.WRITE if is_write else AccessKind.READ
        frames.append(rig.faults.handle(cpu, region.vpage_at(0), kind))
        rig.numa.check_all_invariants()
    return rig, region, frames


class TestMigrationOnly:
    def test_writes_migrate_without_limit(self):
        rig, region, frames = drive(
            MigrationOnlyPolicy(),
            [(i % 2, True) for i in range(10)],
        )
        # Never pinned: the last write is still local to its writer.
        assert frames[-1].kind is FrameKind.LOCAL
        page = region.vm_object.resident_page(0)
        assert rig.numa.directory.get(page.page_id).move_count == 9

    def test_foreign_reads_go_global(self):
        rig, region, frames = drive(
            MigrationOnlyPolicy(),
            [(0, True), (1, False)],
        )
        assert frames[1].kind is FrameKind.GLOBAL

    def test_own_reads_stay_local(self):
        rig, region, frames = drive(
            MigrationOnlyPolicy(),
            [(0, True), (0, False)],
        )
        assert frames[1].kind is FrameKind.LOCAL

    def test_unowned_reads_replicate(self):
        """A never-written page has no owner; reading it is harmless."""
        rig, region, frames = drive(MigrationOnlyPolicy(), [(1, False)])
        assert frames[0].kind is FrameKind.LOCAL

    def test_free_forgets_ownership(self):
        policy = MigrationOnlyPolicy()
        rig, region, _ = drive(policy, [(0, True)])
        page = region.vm_object.resident_page(0)
        rig.pool.free(page, cpu=0)
        frame = rig.faults.handle(1, region.vpage_at(0), AccessKind.READ)
        assert frame.kind is FrameKind.LOCAL  # no stale owner


class TestReplicationOnly:
    def test_readers_replicate(self):
        rig, region, frames = drive(
            ReplicationOnlyPolicy(),
            [(0, False), (1, False), (2, False)],
        )
        assert all(f.kind is FrameKind.LOCAL for f in frames)

    def test_first_foreign_write_demotes_to_global_forever(self):
        rig, region, frames = drive(
            ReplicationOnlyPolicy(),
            [(0, True), (1, True), (0, True), (1, False)],
        )
        assert frames[1].kind is FrameKind.GLOBAL
        assert frames[2].kind is FrameKind.GLOBAL
        page = region.vm_object.resident_page(0)
        entry = rig.numa.directory.get(page.page_id)
        assert entry.state is PageState.GLOBAL_WRITABLE

    def test_same_owner_rewrites_stay_local(self):
        rig, region, frames = drive(
            ReplicationOnlyPolicy(),
            [(0, True), (0, True), (0, True)],
        )
        assert all(f.kind is FrameKind.LOCAL for f in frames)

    def test_demotion_cleared_on_free(self):
        policy = ReplicationOnlyPolicy()
        rig, region, _ = drive(policy, [(0, True), (1, True)])
        page = region.vm_object.resident_page(0)
        rig.pool.free(page, cpu=0)
        frame = rig.faults.handle(1, region.vpage_at(0), AccessKind.WRITE)
        assert frame.kind is FrameKind.LOCAL


class TestDecayPolicy:
    def test_name_reads_like_platinum(self):
        assert DecayPolicy(threshold=4, decay_us=1000.0).name.startswith("decay")

    def test_behaves_like_reconsider(self):
        policy = DecayPolicy(threshold=0, decay_us=100.0)
        rig, region, _ = drive(policy, [(0, True), (1, True), (0, True)])
        page = region.vm_object.resident_page(0)
        assert policy.is_pinned(page.page_id)
        policy.tick(1_000_000.0)
        assert not policy.is_pinned(page.page_id)


class TestEndToEndShape:
    def test_migration_only_melts_down_on_writable_sharing(self):
        from repro.workloads.primes import Primes3

        workload = Primes3.small()
        paper = run_once(
            workload, MoveThresholdPolicy(threshold=4), n_processors=4,
            check_invariants=False,
        )
        migration = run_once(
            Primes3.small(), MigrationOnlyPolicy(), n_processors=4,
            check_invariants=False,
        )
        assert migration.system_time_us > 3 * paper.system_time_us

    def test_replication_only_loses_the_handoff(self):
        paper = run_once(
            Handoff.small(), MoveThresholdPolicy(threshold=4), n_processors=4,
            check_invariants=False,
        )
        replication = run_once(
            Handoff.small(), ReplicationOnlyPolicy(), n_processors=4,
            check_invariants=False,
        )
        assert replication.user_time_us > 1.2 * paper.user_time_us

    def test_migration_only_matches_paper_on_private_data(self):
        from repro.workloads.primes import Primes1

        paper = run_once(
            Primes1.small(), MoveThresholdPolicy(threshold=4), n_processors=4,
            check_invariants=False,
        )
        migration = run_once(
            Primes1.small(), MigrationOnlyPolicy(), n_processors=4,
            check_invariants=False,
        )
        assert migration.user_time_us == pytest.approx(
            paper.user_time_us, rel=0.05
        )

    def test_replication_only_matches_paper_on_read_sharing(self):
        paper = run_once(
            IMatMult.small(), MoveThresholdPolicy(threshold=4), n_processors=4,
            check_invariants=False,
        )
        replication = run_once(
            IMatMult.small(), ReplicationOnlyPolicy(), n_processors=4,
            check_invariants=False,
        )
        assert replication.user_time_us <= paper.user_time_us * 1.05
