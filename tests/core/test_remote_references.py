"""The Section 4.4 remote-reference extension."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.policies import HomeNodePolicy, MoveThresholdPolicy
from repro.core.policies.pragma import Pragma
from repro.core.state import AccessKind, PageState
from repro.machine.memory import FrameKind
from repro.machine.timing import MemoryLocation
from repro.vm.vm_object import shared_object
from tests.conftest import make_rig


def remote_rig(n_processors=3):
    rig = make_rig(
        n_processors=n_processors,
        policy=HomeNodePolicy(MoveThresholdPolicy(threshold=4)),
    )
    obj = shared_object("hot", 2)
    obj.pragma = Pragma.REMOTE
    region = rig.space.map_object(obj)
    return rig, region


class TestHomeEstablishment:
    def test_first_toucher_becomes_the_home(self):
        rig, region = remote_rig()
        frame = rig.faults.handle(1, region.vpage_at(0), AccessKind.WRITE)
        assert frame.kind is FrameKind.LOCAL and frame.node == 1
        entry = rig.numa.directory.get(
            region.vm_object.resident_page(0).page_id
        )
        assert entry.state is PageState.LOCAL_WRITABLE
        assert entry.owner == 1

    def test_first_touch_read_then_write_settles_at_home(self):
        rig, region = remote_rig()
        rig.faults.handle(2, region.vpage_at(0), AccessKind.READ)
        frame = rig.faults.handle(2, region.vpage_at(0), AccessKind.WRITE)
        assert frame.node == 2


class TestRemoteMappings:
    def test_foreign_access_maps_the_home_frame(self):
        rig, region = remote_rig()
        home = rig.faults.handle(0, region.vpage_at(0), AccessKind.WRITE)
        remote = rig.faults.handle(1, region.vpage_at(0), AccessKind.READ)
        assert remote == home
        assert remote.location_for(1) is MemoryLocation.REMOTE
        assert rig.numa.stats.remote_mappings == 1

    def test_remote_access_does_not_move_ownership(self):
        rig, region = remote_rig()
        rig.faults.handle(0, region.vpage_at(0), AccessKind.WRITE)
        for cpu in (1, 2):
            rig.faults.handle(cpu, region.vpage_at(0), AccessKind.WRITE)
        entry = rig.numa.directory.get(
            region.vm_object.resident_page(0).page_id
        )
        assert entry.owner == 0
        assert entry.move_count == 0
        assert rig.numa.stats.moves == 0

    def test_remote_writers_share_the_same_physical_frame(self):
        """No copies, hence no coherence question: all writers hit the
        home frame."""
        rig, region = remote_rig()
        home = rig.faults.handle(0, region.vpage_at(0), AccessKind.WRITE)
        remote = rig.faults.handle(2, region.vpage_at(0), AccessKind.WRITE)
        rig.machine.memory.write_token(remote, 55)
        assert rig.machine.memory.read_token(home) == 55

    def test_invariants_hold_with_remote_mappings(self):
        rig, region = remote_rig()
        rig.faults.handle(0, region.vpage_at(0), AccessKind.WRITE)
        for cpu in (1, 2):
            rig.faults.handle(cpu, region.vpage_at(0), AccessKind.WRITE)
        rig.numa.check_all_invariants()

    def test_remote_read_maps_read_only(self):
        rig, region = remote_rig()
        rig.faults.handle(0, region.vpage_at(0), AccessKind.WRITE)
        rig.faults.handle(1, region.vpage_at(0), AccessKind.READ)
        mapping = rig.machine.cpu(1).mmu.lookup(region.vpage_at(0))
        assert not mapping.protection.writable

    def test_home_accesses_stay_local(self):
        rig, region = remote_rig()
        rig.faults.handle(0, region.vpage_at(0), AccessKind.WRITE)
        rig.faults.handle(1, region.vpage_at(0), AccessKind.READ)
        frame = rig.faults.handle(0, region.vpage_at(0), AccessKind.READ)
        assert frame.location_for(0) is MemoryLocation.LOCAL


class TestTeardownSafety:
    def test_flushing_the_home_shoots_down_remote_mappings(self):
        """No dangling translations into freed local frames."""
        rig, region = remote_rig()
        rig.faults.handle(0, region.vpage_at(0), AccessKind.WRITE)
        rig.faults.handle(1, region.vpage_at(0), AccessKind.READ)  # remote
        page = region.vm_object.resident_page(0)
        # Free the page entirely: the home copy is torn down lazily, and
        # cpu 1's remote mapping must go with it.
        rig.pool.free(page, cpu=0)
        assert rig.machine.cpu(1).mmu.lookup(region.vpage_at(0)) is None
        rig.pool.drain_cleanups(cpu=0)

    def test_mixed_policy_steal_after_remote_phase(self):
        """If the pragma is dropped (page freed, object reused without
        it), the ordinary protocol takes over cleanly."""
        rig, region = remote_rig()
        rig.faults.handle(0, region.vpage_at(0), AccessKind.WRITE)
        rig.faults.handle(1, region.vpage_at(0), AccessKind.WRITE)  # remote
        page = region.vm_object.resident_page(0)
        rig.pool.free(page, cpu=0)
        region.vm_object.pragma = None
        frame = rig.faults.handle(2, region.vpage_at(0), AccessKind.WRITE)
        assert frame.node == 2  # normal LOCAL placement resumes
        rig.numa.check_all_invariants()


class TestHomeNodePolicyUnit:
    def test_unpragmad_pages_delegate(self):
        rig, region = remote_rig()
        plain = rig.space.map_object(shared_object("plain", 1))
        frame = rig.faults.handle(1, plain.vpage_at(0), AccessKind.WRITE)
        assert frame.node == 1  # base policy LOCAL

    def test_remote_pages_never_burn_the_move_budget(self):
        base = MoveThresholdPolicy(threshold=0)
        policy = HomeNodePolicy(base)

        class FakePage:
            page_id = 9
            pragma = Pragma.REMOTE

        policy.note_move(FakePage())
        assert not base.is_pinned(9)

    def test_name(self):
        assert "home-node" in HomeNodePolicy(MoveThresholdPolicy(threshold=4)).name


class TestRemoteProperties:
    @given(
        accesses=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=2),
                st.booleans(),
            ),
            max_size=40,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_remote_sequences_keep_invariants_and_coherence(self, accesses):
        rig, region = remote_rig()
        token = 1
        last = 0
        for cpu, is_write in accesses:
            kind = AccessKind.WRITE if is_write else AccessKind.READ
            frame = rig.faults.handle(cpu, region.vpage_at(0), kind)
            if is_write:
                rig.machine.memory.write_token(frame, token)
                last = token
                token += 1
            else:
                assert rig.machine.memory.read_token(frame) == last
            rig.numa.check_all_invariants()

    @given(
        accesses=st.lists(
            st.integers(min_value=0, max_value=2), min_size=1, max_size=40
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_home_never_changes_under_pure_remote_policy(self, accesses):
        rig, region = remote_rig()
        first = accesses[0]
        for cpu in accesses:
            rig.faults.handle(cpu, region.vpage_at(0), AccessKind.WRITE)
        entry = rig.numa.directory.get(
            region.vm_object.resident_page(0).page_id
        )
        assert entry.owner == first
