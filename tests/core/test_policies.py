"""Placement policies: threshold, baselines, pragmas, reconsideration."""

from dataclasses import dataclass
from typing import Optional

import pytest

from repro.core.policies import (
    AllGlobalEverythingPolicy,
    AllGlobalPolicy,
    AllLocalPolicy,
    DEFAULT_MOVE_THRESHOLD,
    MoveThresholdPolicy,
    Pragma,
    PragmaPolicy,
    ReconsiderPolicy,
)
from repro.core.state import AccessKind, PlacementDecision
from repro.errors import ConfigurationError
from repro.machine.memory import Frame, FrameKind


@dataclass(frozen=True)
class FakePage:
    """Minimal PageLike for policy unit tests."""

    page_id: int
    writable_data: bool = True
    zero_fill: bool = True
    pragma: Optional[Pragma] = None

    @property
    def global_frame(self) -> Frame:
        return Frame(FrameKind.GLOBAL, None, self.page_id)


READ = AccessKind.READ
WRITE = AccessKind.WRITE
LOCAL = PlacementDecision.LOCAL
GLOBAL = PlacementDecision.GLOBAL


class TestMoveThresholdPolicy:
    def test_default_threshold_is_four(self):
        assert DEFAULT_MOVE_THRESHOLD == 4
        assert MoveThresholdPolicy().threshold == 4

    def test_fresh_pages_are_cacheable(self):
        policy = MoveThresholdPolicy(threshold=4)
        page = FakePage(1)
        assert policy.cache_policy(page, WRITE, 0) is LOCAL

    def test_pins_when_threshold_passed(self):
        policy = MoveThresholdPolicy(threshold=2)
        page = FakePage(1)
        for _ in range(2):
            policy.note_move(page)
        assert policy.cache_policy(page, WRITE, 0) is LOCAL  # 2 moves allowed
        policy.note_move(page)
        assert policy.cache_policy(page, READ, 0) is GLOBAL
        assert policy.is_pinned(1)

    def test_threshold_zero_pins_on_first_move(self):
        policy = MoveThresholdPolicy(threshold=0)
        page = FakePage(1)
        assert policy.cache_policy(page, WRITE, 0) is LOCAL
        policy.note_move(page)
        assert policy.cache_policy(page, WRITE, 0) is GLOBAL

    def test_counts_are_per_page(self):
        policy = MoveThresholdPolicy(threshold=1)
        a, b = FakePage(1), FakePage(2)
        policy.note_move(a)
        policy.note_move(a)
        assert policy.is_pinned(1)
        assert not policy.is_pinned(2)
        assert policy.move_count(2) == 0

    def test_free_resets_history(self):
        policy = MoveThresholdPolicy(threshold=0)
        page = FakePage(1)
        policy.note_move(page)
        assert policy.is_pinned(1)
        policy.note_page_freed(page)
        assert not policy.is_pinned(1)
        assert policy.move_count(1) == 0

    def test_pinned_count(self):
        policy = MoveThresholdPolicy(threshold=0)
        policy.note_move(FakePage(1))
        policy.note_move(FakePage(2))
        assert policy.pinned_count == 2

    def test_negative_threshold_rejected(self):
        with pytest.raises(ConfigurationError):
            MoveThresholdPolicy(threshold=-1)

    def test_name_embeds_threshold(self):
        assert "7" in MoveThresholdPolicy(threshold=7).name


class TestBaselinePolicies:
    def test_all_global_sends_writable_data_global(self):
        policy = AllGlobalPolicy()
        assert policy.cache_policy(FakePage(1, writable_data=True), READ, 0) is GLOBAL

    def test_all_global_keeps_readonly_data_local(self):
        """Code and read-only data still replicate in the Tglobal runs."""
        policy = AllGlobalPolicy()
        page = FakePage(1, writable_data=False)
        assert policy.cache_policy(page, READ, 0) is LOCAL

    def test_all_local_always_local(self):
        policy = AllLocalPolicy()
        for kind in AccessKind:
            assert policy.cache_policy(FakePage(1), kind, 3) is LOCAL

    def test_all_global_everything(self):
        policy = AllGlobalEverythingPolicy()
        page = FakePage(1, writable_data=False)
        assert policy.cache_policy(page, READ, 0) is GLOBAL


class TestPragmaPolicy:
    def test_cacheable_pragma_forces_local(self):
        policy = PragmaPolicy(MoveThresholdPolicy(threshold=0))
        page = FakePage(1, pragma=Pragma.CACHEABLE)
        policy.note_move(page)  # would pin under the base policy
        assert policy.cache_policy(page, WRITE, 0) is LOCAL

    def test_noncacheable_pragma_forces_global(self):
        policy = PragmaPolicy(MoveThresholdPolicy(threshold=4))
        page = FakePage(1, pragma=Pragma.NONCACHEABLE)
        assert policy.cache_policy(page, READ, 0) is GLOBAL

    def test_unpragmad_pages_delegate(self):
        base = MoveThresholdPolicy(threshold=0)
        policy = PragmaPolicy(base)
        page = FakePage(1)
        assert policy.cache_policy(page, WRITE, 0) is LOCAL
        policy.note_move(page)
        assert policy.cache_policy(page, WRITE, 0) is GLOBAL

    def test_pragma_moves_do_not_burn_base_budget(self):
        base = MoveThresholdPolicy(threshold=0)
        policy = PragmaPolicy(base)
        page = FakePage(1, pragma=Pragma.CACHEABLE)
        policy.note_move(page)
        assert base.move_count(1) == 0

    def test_free_passes_through(self):
        base = MoveThresholdPolicy(threshold=0)
        policy = PragmaPolicy(base)
        page = FakePage(1)
        policy.note_move(page)
        policy.note_page_freed(page)
        assert not base.is_pinned(1)

    def test_name_mentions_base(self):
        assert "move-threshold" in PragmaPolicy(MoveThresholdPolicy(threshold=4)).name


class TestReconsiderPolicy:
    def test_pin_expires_after_interval(self):
        policy = ReconsiderPolicy(threshold=0, interval_us=100.0)
        page = FakePage(1)
        policy.tick(0.0)
        policy.note_move(page)
        assert policy.cache_policy(page, WRITE, 0) is GLOBAL
        policy.tick(50.0)
        assert policy.cache_policy(page, WRITE, 0) is GLOBAL
        policy.tick(150.0)
        assert policy.cache_policy(page, WRITE, 0) is LOCAL
        assert policy.unpin_count == 1

    def test_move_budget_resets_on_unpin(self):
        policy = ReconsiderPolicy(threshold=1, interval_us=100.0)
        page = FakePage(1)
        policy.tick(0.0)
        policy.note_move(page)
        policy.note_move(page)
        assert policy.is_pinned(1)
        policy.tick(200.0)
        assert policy.move_count(1) == 0

    def test_free_clears_pin_timestamp(self):
        policy = ReconsiderPolicy(threshold=0, interval_us=100.0)
        page = FakePage(1)
        policy.note_move(page)
        policy.note_page_freed(page)
        policy.tick(1000.0)
        assert policy.unpin_count == 0

    def test_interval_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            ReconsiderPolicy(interval_us=0.0)


class TestPolicyProtocol:
    def test_default_hooks_are_noops(self):
        policy = AllLocalPolicy()
        policy.note_move(FakePage(1))
        policy.note_page_freed(FakePage(1))
        policy.tick(5.0)

    def test_describe_returns_name(self):
        assert AllLocalPolicy().describe() == "all-local"
