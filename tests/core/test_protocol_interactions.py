"""Cross-feature protocol properties: remote + eviction + pageout mixed.

The individual features each hold their invariants; these property tests
interleave them — the combinations a long-lived system actually sees —
and check the same three guarantees throughout: directory invariants,
read coherence, and no frame leaks.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.numa_manager import NUMAManager
from repro.core.policies import HomeNodePolicy, MoveThresholdPolicy
from repro.core.policies.pragma import Pragma
from repro.core.state import AccessKind
from repro.machine.config import MachineConfig
from repro.machine.machine import Machine
from repro.vm.address_space import AddressSpace
from repro.vm.fault import FaultHandler
from repro.vm.page_pool import PagePool
from repro.vm.pageout import BackingStore, PageoutDaemon
from repro.vm.pmap import ACEPmap
from repro.vm.vm_object import shared_object

N_CPUS = 3
N_PAGES = 4

#: (cpu, offset, action) where action 0=read 1=write 2=pageout 3=evict-ish
steps = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=N_CPUS - 1),
        st.integers(min_value=0, max_value=N_PAGES - 1),
        st.integers(min_value=0, max_value=2),
    ),
    max_size=50,
)


def build(remote_pragma: bool, local_pages: int = 16):
    config = MachineConfig(
        n_processors=N_CPUS,
        local_pages_per_cpu=local_pages,
        global_pages=32,
    )
    machine = Machine(config)
    policy = HomeNodePolicy(MoveThresholdPolicy(threshold=2))
    numa = NUMAManager(machine, policy, check_invariants=True)
    store = BackingStore()
    pool = PagePool(numa, backing_store=store)
    pmap = ACEPmap(numa)
    space = AddressSpace()
    daemon = PageoutDaemon(pool, store, io_us=100.0)
    faults = FaultHandler(
        machine, space, pool, pmap, pageout_daemon=daemon
    )
    obj = shared_object("mixed", N_PAGES)
    if remote_pragma:
        obj.pragma = Pragma.REMOTE
    region = space.map_object(obj)
    return machine, numa, pool, faults, daemon, region


class TestInteractionProperties:
    @given(sequence=steps, remote=st.booleans())
    @settings(max_examples=50, deadline=None)
    def test_remote_plus_pageout_keeps_coherence(self, sequence, remote):
        machine, numa, pool, faults, daemon, region = build(remote)
        token = 1
        last = {}
        for cpu, offset, action in sequence:
            page = region.vm_object.resident_page(offset)
            if action == 2:
                if page is not None:
                    daemon.page_out(page, cpu)
                continue
            kind = AccessKind.WRITE if action == 1 else AccessKind.READ
            frame = faults.handle(cpu, region.vpage_at(offset), kind)
            if action == 1:
                machine.memory.write_token(frame, token)
                last[offset] = token
                token += 1
            else:
                assert machine.memory.read_token(frame) == last.get(
                    offset, 0
                ), f"page {offset} lost a write"
            numa.check_all_invariants()

    @given(sequence=steps)
    @settings(max_examples=30, deadline=None)
    def test_tiny_local_memory_forces_eviction_but_never_leaks(
        self, sequence
    ):
        machine, numa, pool, faults, daemon, region = build(
            remote_pragma=False, local_pages=2
        )
        for cpu, offset, action in sequence:
            if action == 2:
                page = region.vm_object.resident_page(offset)
                if page is not None:
                    daemon.page_out(page, cpu)
                continue
            kind = AccessKind.WRITE if action == 1 else AccessKind.READ
            faults.handle(cpu, region.vpage_at(offset), kind)
            numa.check_all_invariants()
            for c in range(N_CPUS):
                assert machine.memory.local_in_use(c) <= 2
        # Teardown: free everything and verify nothing leaked.
        for offset in list(region.vm_object.resident.keys()):
            pool.free(region.vm_object.resident[offset], cpu=0)
        pool.drain_cleanups(cpu=0)
        assert machine.memory.global_in_use() == 0
        for c in range(N_CPUS):
            assert machine.memory.local_in_use(c) == 0

    @given(sequence=steps)
    @settings(max_examples=30, deadline=None)
    def test_paged_out_remote_pages_come_back_cacheable(self, sequence):
        """The home (and its remote mappings) are torn down on pageout;
        the page restarts through the normal first-touch path."""
        machine, numa, pool, faults, daemon, region = build(
            remote_pragma=True
        )
        for cpu, offset, action in sequence:
            page = region.vm_object.resident_page(offset)
            if action == 2 and page is not None:
                daemon.page_out(page, cpu)
                # No mappings may survive anywhere.
                for c in range(N_CPUS):
                    assert (
                        machine.cpu(c).mmu.lookup(region.vpage_at(offset))
                        is None
                    )
                continue
            if action != 2:
                kind = AccessKind.WRITE if action == 1 else AccessKind.READ
                faults.handle(cpu, region.vpage_at(offset), kind)
                numa.check_all_invariants()
