"""Property-based tests of the consistency protocol.

Random request sequences are thrown at the full manager stack; after every
single request the directory invariants must hold, and reads must observe
the most recently written content token (coherence) — the property Li &
Hudak's protocol exists to provide.
"""

from typing import List, Tuple

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.policies import (
    AllGlobalEverythingPolicy,
    AllLocalPolicy,
    MoveThresholdPolicy,
)
from repro.core.state import AccessKind, PageState
from repro.machine.memory import FrameKind
from repro.vm.vm_object import shared_object
from tests.conftest import make_rig

N_CPUS = 3
N_PAGES = 4

#: One protocol request: (cpu, page offset, is_write, free_first).
Request = Tuple[int, int, bool, bool]

requests = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=N_CPUS - 1),
        st.integers(min_value=0, max_value=N_PAGES - 1),
        st.booleans(),
        st.booleans(),
    ),
    max_size=60,
)


def run_sequence(policy_factory, sequence: List[Request]):
    """Drive the full stack and check invariants + coherence throughout."""
    rig = make_rig(
        n_processors=N_CPUS,
        policy=policy_factory(),
        local_pages_per_cpu=16,
        global_pages=64,
    )
    region = rig.space.map_object(shared_object("data", N_PAGES))
    next_token = 1
    last_written = {}  # offset -> token (0 means zero-filled)
    for cpu, offset, is_write, free_first in sequence:
        page = region.vm_object.resident_page(offset)
        if free_first and page is not None:
            rig.pool.free(page, cpu)
            last_written.pop(offset, None)
            page = None
        vpage = region.vpage_at(offset)
        kind = AccessKind.WRITE if is_write else AccessKind.READ
        frame = rig.faults.handle(cpu, vpage, kind)
        if is_write:
            rig.machine.memory.write_token(frame, next_token)
            last_written[offset] = next_token
            next_token += 1
        else:
            observed = rig.machine.memory.read_token(frame)
            assert observed == last_written.get(offset, 0), (
                f"coherence violation on page {offset}: read {observed}, "
                f"expected {last_written.get(offset, 0)}"
            )
        rig.numa.check_all_invariants()
        entry = rig.numa.directory.get(
            region.vm_object.resident_page(offset).page_id
        )
        if is_write and entry.state is PageState.LOCAL_WRITABLE:
            assert entry.owner == cpu
    return rig


class TestProtocolProperties:
    @given(sequence=requests)
    @settings(max_examples=60, deadline=None)
    def test_threshold_policy_keeps_invariants_and_coherence(self, sequence):
        run_sequence(lambda: MoveThresholdPolicy(threshold=2), sequence)

    @given(sequence=requests)
    @settings(max_examples=30, deadline=None)
    def test_always_local_policy_keeps_invariants_and_coherence(self, sequence):
        run_sequence(AllLocalPolicy, sequence)

    @given(sequence=requests)
    @settings(max_examples=30, deadline=None)
    def test_always_global_policy_keeps_invariants_and_coherence(
        self, sequence
    ):
        run_sequence(AllGlobalEverythingPolicy, sequence)

    @given(sequence=requests)
    @settings(max_examples=30, deadline=None)
    def test_move_counts_never_decrease(self, sequence):
        rig = make_rig(
            n_processors=N_CPUS,
            policy=MoveThresholdPolicy(threshold=3),
            local_pages_per_cpu=16,
            global_pages=64,
        )
        region = rig.space.map_object(shared_object("data", N_PAGES))
        previous = {}
        for cpu, offset, is_write, _ in sequence:
            vpage = region.vpage_at(offset)
            kind = AccessKind.WRITE if is_write else AccessKind.READ
            rig.faults.handle(cpu, vpage, kind)
            page = region.vm_object.resident_page(offset)
            entry = rig.numa.directory.get(page.page_id)
            assert entry.move_count >= previous.get(offset, 0)
            previous[offset] = entry.move_count

    @given(sequence=requests)
    @settings(max_examples=30, deadline=None)
    def test_pinned_pages_stay_global_until_freed(self, sequence):
        policy = MoveThresholdPolicy(threshold=1)
        rig = make_rig(
            n_processors=N_CPUS,
            policy=policy,
            local_pages_per_cpu=16,
            global_pages=64,
        )
        region = rig.space.map_object(shared_object("data", N_PAGES))
        for cpu, offset, is_write, free_first in sequence:
            page = region.vm_object.resident_page(offset)
            if free_first and page is not None:
                rig.pool.free(page, cpu)
                page = None
            vpage = region.vpage_at(offset)
            kind = AccessKind.WRITE if is_write else AccessKind.READ
            # A pin asserted before this request must be honoured by it
            # (the pinning move itself was executed under a LOCAL answer,
            # so the pin becomes visible at the *next* fault).
            pinned_before = (
                page is not None and policy.is_pinned(page.page_id)
            )
            frame = rig.faults.handle(cpu, vpage, kind)
            page = region.vm_object.resident_page(offset)
            entry = rig.numa.directory.get(page.page_id)
            if pinned_before:
                assert frame.kind is FrameKind.GLOBAL
                assert entry.state is PageState.GLOBAL_WRITABLE
                assert not entry.local_copies

    @given(sequence=requests)
    @settings(max_examples=30, deadline=None)
    def test_no_frame_leaks(self, sequence):
        """After freeing everything, all frames return to their pools."""
        rig = run_sequence(lambda: MoveThresholdPolicy(threshold=2), sequence)
        region_obj = None
        for obj_region in rig.space.regions:
            region_obj = obj_region.vm_object
        for offset in list(region_obj.resident.keys()):
            rig.pool.free(region_obj.resident[offset], cpu=0)
        rig.pool.drain_cleanups(cpu=0)
        assert rig.machine.memory.global_in_use() == 0
        for cpu in range(N_CPUS):
            assert rig.machine.memory.local_in_use(cpu) == 0

    @given(sequence=requests)
    @settings(max_examples=20, deadline=None)
    def test_mmu_and_directory_mappings_agree(self, sequence):
        rig = run_sequence(lambda: MoveThresholdPolicy(threshold=2), sequence)
        for entry in rig.numa.directory.entries():
            for cpu, mapping in entry.mappings.items():
                hw = rig.machine.cpu(cpu).mmu.lookup(mapping.vpage)
                assert hw is not None, "directory mapping missing in MMU"
                assert hw.frame == mapping.frame


class TestSingleWriterProperty:
    @given(
        writes=st.lists(
            st.integers(min_value=0, max_value=N_CPUS - 1), max_size=30
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_at_most_one_writable_mapping_unless_global(self, writes):
        rig = make_rig(
            n_processors=N_CPUS,
            policy=MoveThresholdPolicy(threshold=5),
            local_pages_per_cpu=16,
            global_pages=32,
        )
        region = rig.space.map_object(shared_object("data", 1))
        for cpu in writes:
            rig.faults.handle(cpu, region.vpage_at(0), AccessKind.WRITE)
            page = region.vm_object.resident_page(0)
            entry = rig.numa.directory.get(page.page_id)
            writable_cpus = [
                c
                for c in range(N_CPUS)
                if (m := rig.machine.cpu(c).mmu.lookup(region.vpage_at(0)))
                is not None
                and m.protection.writable
                and m.frame.kind.value == "local"
            ]
            if entry.state is not PageState.GLOBAL_WRITABLE:
                assert len(writable_cpus) <= 1


if __name__ == "__main__":
    pytest.main([__file__, "-q"])
