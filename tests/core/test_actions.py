"""Action executor: cost charging and content movement."""

import pytest

from repro.core.actions import ActionExecutor
from repro.core.directory import DirectoryEntry
from repro.core.stats import NUMAStats
from repro.errors import ProtocolError
from repro.machine.config import MachineConfig
from repro.machine.machine import Machine
from repro.machine.protection import PROT_READ
from repro.machine.timing import MemoryLocation


@pytest.fixture
def machine() -> Machine:
    return Machine(
        MachineConfig(n_processors=3, local_pages_per_cpu=8, global_pages=16)
    )


@pytest.fixture
def stats() -> NUMAStats:
    return NUMAStats()


@pytest.fixture
def executor(machine, stats) -> ActionExecutor:
    return ActionExecutor(machine, stats)


def make_entry(machine) -> DirectoryEntry:
    frame = machine.memory.allocate_global()
    return DirectoryEntry(page_id=1, global_frame=frame)


class TestSync:
    def test_sync_copies_content_back(self, machine, executor):
        entry = make_entry(machine)
        local = machine.memory.allocate_local(1)
        machine.memory.write_token(local, 42)
        entry.local_copies[1] = local
        executor.sync(entry, copy_cpu=1, acting_cpu=1)
        assert machine.memory.read_token(entry.global_frame) == 42

    def test_sync_charges_system_time(self, machine, executor):
        entry = make_entry(machine)
        entry.local_copies[1] = machine.memory.allocate_local(1)
        executor.sync(entry, copy_cpu=1, acting_cpu=1)
        expected = machine.timing.page_copy_us(
            MemoryLocation.LOCAL, MemoryLocation.GLOBAL
        )
        assert machine.cpu(1).system_time_us == pytest.approx(expected)

    def test_remote_sync_costs_more(self, machine, executor):
        entry = make_entry(machine)
        entry.local_copies[1] = machine.memory.allocate_local(1)
        executor.sync(entry, copy_cpu=1, acting_cpu=0)
        expected = machine.timing.page_copy_us(
            MemoryLocation.REMOTE, MemoryLocation.GLOBAL
        )
        assert machine.cpu(0).system_time_us == pytest.approx(expected)

    def test_sync_without_copy_is_a_protocol_error(self, machine, executor):
        entry = make_entry(machine)
        with pytest.raises(ProtocolError):
            executor.sync(entry, copy_cpu=2, acting_cpu=0)

    def test_sync_counted(self, machine, executor, stats):
        entry = make_entry(machine)
        entry.local_copies[0] = machine.memory.allocate_local(0)
        executor.sync(entry, copy_cpu=0, acting_cpu=0)
        assert stats.syncs == 1


class TestFlushAndUnmap:
    def test_flush_frees_frames_and_drops_mappings(self, machine, executor):
        entry = make_entry(machine)
        local = machine.memory.allocate_local(1)
        entry.local_copies[1] = local
        machine.cpu(1).mmu.enter(10, local, PROT_READ)
        entry.record_mapping(1, 10, PROT_READ, local)
        executor.flush(entry, [1], acting_cpu=0)
        assert entry.local_copies == {}
        assert machine.cpu(1).mmu.lookup(10) is None
        assert machine.memory.local_in_use(1) == 0

    def test_flush_of_copyless_cpu_is_harmless(self, machine, executor):
        entry = make_entry(machine)
        executor.flush(entry, [0, 1, 2], acting_cpu=0)

    def test_unmap_all_keeps_global_frame(self, machine, executor, stats):
        entry = make_entry(machine)
        machine.cpu(0).mmu.enter(10, entry.global_frame, PROT_READ)
        entry.record_mapping(0, 10, PROT_READ, entry.global_frame)
        executor.unmap_all(entry, acting_cpu=0)
        assert machine.cpu(0).mmu.lookup(10) is None
        assert stats.unmaps == 1
        machine.memory.read_token(entry.global_frame)  # still allocated

    def test_cross_cpu_drop_charges_shootdown(self, machine, executor):
        entry = make_entry(machine)
        machine.cpu(2).mmu.enter(10, entry.global_frame, PROT_READ)
        entry.record_mapping(2, 10, PROT_READ, entry.global_frame)
        executor.drop_mapping(entry, 2, acting_cpu=0)
        assert machine.cpu(0).system_time_us == pytest.approx(
            machine.timing.shootdown_us
        )
        assert machine.cpu(2).system_time_us == 0.0


class TestCopyAndZeroFill:
    def test_copy_to_local_moves_content(self, machine, executor):
        entry = make_entry(machine)
        machine.memory.write_token(entry.global_frame, 9)
        frame = executor.copy_to_local(entry, cpu=2, acting_cpu=2)
        assert frame.node == 2
        assert machine.memory.read_token(frame) == 9
        assert entry.local_copies[2] == frame

    def test_copy_to_local_is_idempotent(self, machine, executor, stats):
        entry = make_entry(machine)
        first = executor.copy_to_local(entry, cpu=2, acting_cpu=2)
        second = executor.copy_to_local(entry, cpu=2, acting_cpu=2)
        assert first == second
        assert stats.copies_to_local == 1

    def test_zero_fill_local(self, machine, executor, stats):
        entry = make_entry(machine)
        machine.memory.write_token(entry.global_frame, 5)
        frame = executor.zero_fill_local(entry, cpu=1)
        assert machine.memory.read_token(frame) == 0
        assert stats.zero_fills == 1
        assert machine.cpu(1).system_time_us == pytest.approx(
            machine.timing.zero_fill_us(MemoryLocation.LOCAL)
        )

    def test_zero_fill_global(self, machine, executor):
        entry = make_entry(machine)
        machine.memory.write_token(entry.global_frame, 5)
        frame = executor.zero_fill_global(entry, cpu=1)
        assert frame == entry.global_frame
        assert machine.memory.read_token(frame) == 0

    def test_free_local_copies_releases_everything(self, machine, executor):
        entry = make_entry(machine)
        entry.local_copies[0] = machine.memory.allocate_local(0)
        entry.local_copies[1] = machine.memory.allocate_local(1)
        freed = executor.free_local_copies(entry)
        assert len(freed) == 2
        assert entry.local_copies == {}
        assert machine.memory.local_in_use(0) == 0
        assert machine.memory.local_in_use(1) == 0
