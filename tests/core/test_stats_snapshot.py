"""NUMAStats.snapshot() and .diff(): the sampler's building blocks."""

from dataclasses import fields

from repro.core.state import AccessKind
from repro.core.stats import NUMAStats


def filled_stats():
    stats = NUMAStats()
    stats.faults[AccessKind.READ] = 10
    stats.faults[AccessKind.WRITE] = 4
    stats.zero_fills = 3
    stats.copies_to_local = 7
    stats.syncs = 2
    stats.moves = 5
    stats.pages_freed = 1
    return stats


class TestSnapshot:
    def test_snapshot_equals_original(self):
        stats = filled_stats()
        snap = stats.snapshot()
        assert snap.as_dict() == stats.as_dict()

    def test_snapshot_is_independent(self):
        stats = filled_stats()
        snap = stats.snapshot()
        stats.moves += 100
        stats.faults[AccessKind.READ] += 1
        assert snap.moves == 5
        assert snap.faults[AccessKind.READ] == 10

    def test_snapshot_covers_every_field(self):
        """A field added to NUMAStats must flow through snapshot()."""
        stats = NUMAStats()
        for index, spec in enumerate(fields(stats)):
            if spec.name == "faults":
                continue
            setattr(stats, spec.name, index + 1)
        snap = stats.snapshot()
        for index, spec in enumerate(fields(stats)):
            if spec.name == "faults":
                continue
            assert getattr(snap, spec.name) == index + 1, spec.name


class TestDiff:
    def test_diff_subtracts_per_field(self):
        earlier = filled_stats()
        later = earlier.snapshot()
        later.moves += 3
        later.syncs += 1
        later.faults[AccessKind.WRITE] += 2
        delta = later.diff(earlier)
        assert delta.moves == 3
        assert delta.syncs == 1
        assert delta.faults[AccessKind.WRITE] == 2
        assert delta.faults[AccessKind.READ] == 0
        assert delta.zero_fills == 0

    def test_diff_leaves_operands_untouched(self):
        earlier = filled_stats()
        later = earlier.snapshot()
        later.moves += 3
        later.diff(earlier)
        assert earlier.moves == 5
        assert later.moves == 8

    def test_diff_against_fresh_stats_is_identity(self):
        stats = filled_stats()
        delta = stats.diff(NUMAStats())
        assert delta.as_dict() == stats.as_dict()

    def test_reversed_diff_goes_negative(self):
        """Sign is preserved so an operand mix-up is visible."""
        earlier = filled_stats()
        later = earlier.snapshot()
        later.moves += 3
        assert earlier.diff(later).moves == -3

    def test_diff_total_helpers(self):
        earlier = filled_stats()
        later = earlier.snapshot()
        later.faults[AccessKind.READ] += 5
        later.copies_to_local += 2
        delta = later.diff(earlier)
        assert delta.total_faults() == 5
        assert delta.total_page_copies() == 2
