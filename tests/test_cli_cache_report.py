"""The ``repro-numa cache`` and cache-backed ``report`` commands."""

import json

import pytest

from repro.cli import build_parser, main


def _warm(monkeypatch, tmp_path, apps=("ParMult",)):
    """Warm .repro-cache/ under *tmp_path* via the batch orchestrator."""
    monkeypatch.chdir(tmp_path)
    argv = ["--quick", "batch", "--apps", *apps]
    assert main(argv) == 0
    return tmp_path / ".repro-cache"


class TestParsing:
    def test_report_flags(self):
        args = build_parser().parse_args(
            [
                "report", "--from-cache", "--fill", "--missing",
                "--out", "r.md", "--tables", "t",
                "--require-cache-ratio", "1.0", "--apps", "ParMult",
            ]
        )
        assert args.from_cache and args.fill and args.missing
        assert args.out == "r.md" and args.tables == "t"
        assert args.require_cache_ratio == pytest.approx(1.0)
        assert args.apps == ["ParMult"]

    def test_report_defaults(self):
        args = build_parser().parse_args(["report"])
        assert not args.from_cache and not args.fill and not args.missing
        assert args.out == "REPORT.md"
        assert args.cache_dir is None  # resolved to .repro-cache at run time

    def test_cache_actions(self):
        args = build_parser().parse_args(["cache", "gc", "--corrupt"])
        assert args.action == "gc"
        assert args.corrupt and not args.schema_mismatch and not args.foreign
        assert build_parser().parse_args(["cache", "ls"]).action == "ls"


class TestReportFromCache:
    def test_warm_cache_serves_everything(self, tmp_path, capsys,
                                          monkeypatch):
        _warm(monkeypatch, tmp_path)
        out = tmp_path / "r.md"
        sink = tmp_path / "r.jsonl"
        argv = [
            "--quick", "report", "--apps", "ParMult",
            "--from-cache", "--out", str(out), "--json", str(sink),
            "--require-cache-ratio", "1.0",
        ]
        assert main(argv) == 0
        assert "executed 0" in capsys.readouterr().out
        records = [json.loads(l) for l in sink.read_text().splitlines()]
        summary = next(r for r in records if r["t"] == "report_summary")
        assert summary["executed"] == 0
        assert summary["cache_ratio"] == 1.0
        assert summary["missing"] == 0
        assert "(from cache)" in out.read_text()

    def test_regeneration_is_byte_identical(self, tmp_path, monkeypatch):
        _warm(monkeypatch, tmp_path)
        documents = []
        for name in ("a.md", "b.md"):
            assert main(
                [
                    "--quick", "report", "--apps", "ParMult",
                    "--from-cache", "--out", str(tmp_path / name),
                ]
            ) == 0
            documents.append((tmp_path / name).read_bytes())
        assert documents[0] == documents[1]

    def test_cold_cache_fails_required_ratio(self, tmp_path, capsys,
                                             monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(
            [
                "--quick", "report", "--apps", "ParMult", "--from-cache",
                "--out", str(tmp_path / "r.md"),
                "--require-cache-ratio", "1.0",
            ]
        ) == 1
        assert "cache ratio" in capsys.readouterr().err
        # The report still renders, with the missing specs footnoted.
        assert "Missing specs" in (tmp_path / "r.md").read_text()

    def test_fill_simulates_only_the_missing_specs(self, tmp_path, capsys,
                                                   monkeypatch):
        _warm(monkeypatch, tmp_path)
        argv = [
            "--quick", "report", "--apps", "ParMult", "FFT",
            "--from-cache", "--fill", "--out", str(tmp_path / "r.md"),
            "--require-cache-ratio", "1.0",
        ]
        assert main(argv) == 0
        # ParMult's triple was cached; only FFT's three specs simulate.
        assert "executed 3" in capsys.readouterr().out

    def test_missing_lists_without_executing(self, tmp_path, capsys,
                                             monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(
            ["--quick", "report", "--apps", "ParMult", "--missing"]
        ) == 0
        out = capsys.readouterr().out
        assert "3 of 3 required specs missing" in out
        assert not (tmp_path / ".repro-cache").exists(), \
            "--missing is pure inspection"
        assert not (tmp_path / "REPORT.md").exists()

    def test_missing_empties_after_warming(self, tmp_path, capsys,
                                           monkeypatch):
        _warm(monkeypatch, tmp_path)
        sink = tmp_path / "m.jsonl"
        assert main(
            [
                "--quick", "report", "--apps", "ParMult", "--missing",
                "--json", str(sink),
            ]
        ) == 0
        assert "0 of 3 required specs missing" in capsys.readouterr().out
        records = [json.loads(l) for l in sink.read_text().splitlines()]
        assert not any(r["t"] == "report_missing_spec" for r in records)

    def test_tables_directory(self, tmp_path, monkeypatch):
        _warm(monkeypatch, tmp_path)
        assert main(
            [
                "--quick", "report", "--apps", "ParMult", "--from-cache",
                "--out", str(tmp_path / "r.md"),
                "--tables", str(tmp_path / "tables"),
            ]
        ) == 0
        names = sorted(p.name for p in (tmp_path / "tables").iterdir())
        assert names == [
            "table3.csv", "table3.tex", "table4.csv", "table4.tex",
        ]

    def test_default_path_runs_then_renders(self, tmp_path, capsys,
                                            monkeypatch):
        """Without --from-cache the required grid routes through batch."""
        monkeypatch.chdir(tmp_path)
        argv = [
            "--quick", "report", "--apps", "ParMult",
            "--out", str(tmp_path / "r.md"),
        ]
        assert main(argv) == 0
        assert "executed 3" in capsys.readouterr().out
        assert main(argv) == 0
        assert "executed 0" in capsys.readouterr().out, \
            "second run serves from the cache it just warmed"


@pytest.fixture
def dirty_cache(tmp_path, monkeypatch):
    """A warm cache with one foreign, one corrupt, one stale-schema file."""
    root = _warm(monkeypatch, tmp_path)
    (root / "notes.txt").write_text("foreign")
    entries = sorted(root.glob("*/*.json"))
    entries[0].write_text("{corrupt")
    stale = json.loads(entries[1].read_text())
    stale["schema"] = "repro-exp-cache/v0"
    entries[1].write_text(json.dumps(stale))
    return root


class TestCacheCommand:
    def test_ls_lists_entries_and_skips(self, tmp_path, capsys, monkeypatch):
        root = _warm(monkeypatch, tmp_path)
        (root / "notes.txt").write_text("foreign")
        sink = tmp_path / "ls.jsonl"
        assert main(["cache", "ls", "--json", str(sink)]) == 0
        out = capsys.readouterr().out
        assert "3 entries, 1 skipped" in out
        assert "[foreign] notes.txt" in out
        assert "ParMult" in out
        records = [json.loads(l) for l in sink.read_text().splitlines()]
        kinds = {r["t"] for r in records}
        assert kinds == {"cache_entry", "cache_skipped"}
        fps = [r["fingerprint"] for r in records if r["t"] == "cache_entry"]
        assert fps == sorted(fps) and all(len(fp) == 64 for fp in fps)

    def test_stats(self, dirty_cache, capsys):
        assert main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert "entries   1" in out  # 3 warmed - corrupt - stale
        assert "workload  ParMult: 1" in out
        assert "skipped   corrupt: 1" in out
        assert "skipped   schema-mismatch: 1" in out
        assert "skipped   foreign: 1" in out

    def test_gc_without_flags_is_a_dry_run(self, dirty_cache, capsys):
        assert main(["cache", "gc"]) == 0
        out = capsys.readouterr().out
        assert "would remove 3 file(s)" in out
        assert (dirty_cache / "notes.txt").exists()

    def test_gc_prunes_by_reason(self, dirty_cache, capsys):
        assert main(
            ["cache", "gc", "--schema-mismatch", "--corrupt", "--foreign"]
        ) == 0
        out = capsys.readouterr().out
        assert "removed 3 file(s)" in out
        assert not (dirty_cache / "notes.txt").exists()
        # The surviving entry still serves a report.
        assert main(["cache", "stats"]) == 0
        assert "entries   1" in capsys.readouterr().out

    def test_gc_never_touches_valid_entries(self, tmp_path, capsys,
                                            monkeypatch):
        _warm(monkeypatch, tmp_path)
        assert main(["cache", "gc", "--corrupt", "--foreign"]) == 0
        assert "removed 0 file(s)" in capsys.readouterr().out
        assert main(["cache", "stats"]) == 0
        assert "entries   3" in capsys.readouterr().out

    def test_gc_tmp_prunes_stale_leftovers_only(self, tmp_path, capsys,
                                                monkeypatch):
        """--tmp collects crashed-run leftovers but keeps fresh temp
        files a live batch may still be writing."""
        import os
        import time

        root = _warm(monkeypatch, tmp_path)
        fresh = root / ".tmp-live.json"
        fresh.write_text("{")
        stale = root / ".tmp-crashed.json"
        stale.write_text("{")
        past = time.time() - 7200
        os.utime(stale, (past, past))

        assert main(["cache", "gc", "--tmp"]) == 0
        out = capsys.readouterr().out
        assert "removed 1 file(s)" in out
        assert ".tmp-crashed.json" in out
        assert fresh.exists() and not stale.exists()

        assert main(
            ["cache", "gc", "--tmp", "--tmp-min-age", "0"]
        ) == 0
        assert "removed 1 file(s)" in capsys.readouterr().out
        assert not fresh.exists()
