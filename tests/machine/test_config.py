"""Machine configuration validation and the paper's quoted ratios."""

import pytest

from repro.errors import ConfigurationError
from repro.machine.config import (
    MachineConfig,
    TimingParameters,
    ace_config,
    uniprocessor_config,
)


class TestTimingParameters:
    def test_defaults_are_the_papers_measurements(self):
        t = TimingParameters()
        assert t.local_fetch_us == 0.65
        assert t.local_store_us == 0.84
        assert t.global_fetch_us == 1.5
        assert t.global_store_us == 1.4

    def test_fetch_ratio_is_about_2_3(self):
        assert TimingParameters().fetch_ratio == pytest.approx(2.3, abs=0.02)

    def test_store_ratio_is_about_1_7(self):
        assert TimingParameters().store_ratio == pytest.approx(1.67, abs=0.02)

    def test_45_percent_store_mix_is_about_2(self):
        """Section 2.2: 'about 2 times slower for mixes that are 45% stores'."""
        assert TimingParameters().mix_ratio(0.45) == pytest.approx(2.0, abs=0.05)

    def test_mix_ratio_rejects_bad_fraction(self):
        with pytest.raises(ConfigurationError):
            TimingParameters().mix_ratio(1.5)
        with pytest.raises(ConfigurationError):
            TimingParameters().mix_ratio(-0.1)

    def test_all_fetch_mix_equals_fetch_ratio(self):
        t = TimingParameters()
        assert t.mix_ratio(0.0) == pytest.approx(t.fetch_ratio)

    def test_rejects_negative_latency(self):
        with pytest.raises(ConfigurationError):
            TimingParameters(local_fetch_us=-1).validate()

    def test_rejects_global_faster_than_local(self):
        with pytest.raises(ConfigurationError):
            TimingParameters(global_fetch_us=0.1).validate()
        with pytest.raises(ConfigurationError):
            TimingParameters(global_store_us=0.1).validate()

    def test_rejects_bad_bulk_factor(self):
        with pytest.raises(ConfigurationError):
            TimingParameters(bulk_transfer_factor=0.0).validate()

    def test_rejects_nonpositive_remote_latency(self):
        with pytest.raises(ConfigurationError):
            TimingParameters(remote_fetch_us=0.0).validate()
        with pytest.raises(ConfigurationError):
            TimingParameters(remote_store_us=-1.0).validate()

    def test_rejects_remote_faster_than_global(self):
        with pytest.raises(ConfigurationError):
            TimingParameters(remote_fetch_us=1.0).validate()
        with pytest.raises(ConfigurationError):
            TimingParameters(remote_store_us=1.0).validate()

    def test_default_remote_ordering_is_valid(self):
        t = TimingParameters()
        t.validate()
        assert t.remote_fetch_us >= t.global_fetch_us
        assert t.remote_store_us >= t.global_store_us
        with pytest.raises(ConfigurationError):
            TimingParameters(bulk_transfer_factor=1.5).validate()

    def test_bulk_factor_of_one_is_allowed(self):
        TimingParameters(bulk_transfer_factor=1.0).validate()

    def test_rejects_negative_kernel_costs(self):
        with pytest.raises(ConfigurationError):
            TimingParameters(fault_overhead_us=-1).validate()


class TestMachineConfig:
    def test_default_is_the_typical_large_prototype(self):
        config = MachineConfig()
        assert config.n_processors == 7
        assert config.local_bytes_per_cpu == 8 * 1024 * 1024
        assert config.global_bytes == 16 * 1024 * 1024

    def test_page_size_is_4k(self):
        assert MachineConfig().page_size_bytes == 4096

    def test_cpus_range(self):
        assert list(MachineConfig(n_processors=3).cpus) == [0, 1, 2]

    def test_backplane_limit_of_8_processors(self):
        """Nine slots, one for global memory: at most 8 processors."""
        MachineConfig(n_processors=8)
        with pytest.raises(ConfigurationError):
            MachineConfig(n_processors=9)

    def test_backplane_limit_can_be_lifted(self):
        config = MachineConfig(n_processors=16, enforce_backplane=False)
        assert config.n_processors == 16

    def test_rejects_zero_processors(self):
        with pytest.raises(ConfigurationError):
            MachineConfig(n_processors=0)

    def test_rejects_empty_memories(self):
        with pytest.raises(ConfigurationError):
            MachineConfig(local_pages_per_cpu=0)
        with pytest.raises(ConfigurationError):
            MachineConfig(global_pages=0)

    def test_rejects_zero_page_size(self):
        with pytest.raises(ConfigurationError):
            MachineConfig(page_size_words=0)

    def test_scaled_replaces_fields(self):
        config = MachineConfig().scaled(n_processors=2, global_pages=10)
        assert config.n_processors == 2
        assert config.global_pages == 10
        assert config.local_pages_per_cpu == MachineConfig().local_pages_per_cpu

    def test_ace_config_factory(self):
        assert ace_config().n_processors == 7
        assert ace_config(3).n_processors == 3
        assert ace_config(3, global_pages=7).global_pages == 7

    def test_uniprocessor_config(self):
        assert uniprocessor_config().n_processors == 1
