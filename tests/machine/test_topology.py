"""Topology tree, machine registry, and page-table layer tests."""

import pytest

from repro.errors import ConfigurationError, OutOfMemoryError
from repro.machine.config import MachineConfig, TimingParameters, ace_config
from repro.machine.machine import Machine
from repro.machine.pagetable import (
    CENTRALIZED,
    PT_PAGES_PER_REPLICA,
    REPLICATED,
)
from repro.machine.timing import MemoryLocation
from repro.machine.topology import (
    MACHINE_REGISTRY,
    SocketTopology,
    flat_topology,
    registry_rows,
    resolve_machine,
)


def two_socket() -> SocketTopology:
    return SocketTopology(name="2x2", sockets=((0, 1), (2, 3)))


class TestSocketTopology:
    def test_shape_accessors(self):
        topo = two_socket()
        assert topo.n_cpus == 4
        assert topo.n_sockets == 2
        assert topo.multilevel
        assert topo.socket_of(1) == 0
        assert topo.socket_of(2) == 1
        assert topo.same_socket(0, 1)
        assert not topo.same_socket(1, 2)

    def test_flat_topology_is_not_multilevel(self):
        topo = flat_topology(7)
        assert topo.n_cpus == 7
        assert topo.n_sockets == 7
        assert not topo.multilevel

    def test_rejects_non_partition(self):
        with pytest.raises(ConfigurationError):
            SocketTopology(name="bad", sockets=((0, 1), (1, 2)))
        with pytest.raises(ConfigurationError):
            SocketTopology(name="gap", sockets=((0,), (2,)))

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            SocketTopology(name="empty", sockets=())

    def test_validate_orders_socket_between_local_and_global(self):
        timing = TimingParameters()
        two_socket().validate(timing)  # defaults sit inside the band
        fast = SocketTopology(
            name="fast", sockets=((0, 1),), socket_fetch_us=0.1
        )
        with pytest.raises(ConfigurationError):
            fast.validate(timing)
        slow = SocketTopology(
            name="slow", sockets=((0, 1),), socket_store_us=99.0
        )
        with pytest.raises(ConfigurationError):
            slow.validate(timing)

    def test_validate_rejects_nonpositive_latency(self):
        with pytest.raises(ConfigurationError):
            SocketTopology(
                name="neg", sockets=((0, 1),), socket_fetch_us=-1.0
            ).validate(TimingParameters())

    def test_flat_topology_skips_the_ordering_band(self):
        # Singleton sockets never carry a socket-tier reference, so an
        # out-of-band latency on a flat tree is not an error.
        topo = SocketTopology(
            name="flat-fast", sockets=((0,), (1,)), socket_fetch_us=0.1
        )
        topo.validate(TimingParameters())


class TestRegistry:
    def test_registry_names(self):
        assert set(MACHINE_REGISTRY) == {"ace", "2socket8", "4socket32"}

    def test_resolve_is_case_insensitive(self):
        config = resolve_machine("2SOCKET8")
        assert config.topology is not None
        assert config.topology.name == "2socket8"
        assert config.n_processors == 8

    def test_resolve_unknown_raises(self):
        with pytest.raises(ConfigurationError):
            resolve_machine("nosuch")

    def test_ace_honours_processor_count(self):
        assert resolve_machine("ace").n_processors == 7
        assert resolve_machine("ace", n_processors=3).n_processors == 3

    def test_four_socket_shape(self):
        config = resolve_machine("4socket32")
        topo = config.topology
        assert config.n_processors == 32
        assert topo.n_sockets == 4
        assert all(len(s) == 8 for s in topo.sockets)

    def test_registry_rows_cover_every_machine(self):
        rows = registry_rows()
        assert [row["name"] for row in rows] == list(MACHINE_REGISTRY)
        ace = rows[0]
        assert ace["multilevel"] is False
        assert ace["socket_fetch_us"] is None
        multi = rows[1]
        assert multi["multilevel"] is True
        assert multi["page_tables"] == CENTRALIZED


class TestMachineIntegration:
    def test_flat_machine_has_no_topology_layer(self):
        machine = Machine(ace_config(3))
        assert machine.topology is None
        assert machine.pagetables is None
        assert machine.topology_counters() == {}

    def test_explicit_flat_topology_is_inert(self):
        config = MachineConfig(n_processors=3, topology=flat_topology(3))
        machine = Machine(config)
        assert machine.topology is None
        assert machine.pagetables is None

    def test_topology_cpu_count_must_match(self):
        with pytest.raises(ConfigurationError):
            MachineConfig(n_processors=3, topology=two_socket())

    def test_multilevel_machine_builds_the_layer(self):
        machine = Machine(resolve_machine("2socket8"))
        assert machine.topology is not None
        assert machine.pagetables is not None
        assert machine.pagetables.placement == CENTRALIZED
        counters = machine.topology_counters()
        assert counters["pt_walks_global"] == 0
        assert counters["socket_remote_mappings"] == 0

    def test_replicated_requires_multilevel(self):
        with pytest.raises(ConfigurationError):
            MachineConfig(n_processors=3, page_tables=REPLICATED)

    def test_unknown_placement_rejected(self):
        with pytest.raises(ConfigurationError):
            MachineConfig(n_processors=3, page_tables="interleaved")

    def test_replicated_tables_occupy_socket_frames(self):
        config = resolve_machine("4socket32").scaled(page_tables=REPLICATED)
        machine = Machine(config)
        topo = machine.topology
        for socket in range(topo.n_sockets):
            assert (
                machine.memory.socket_available(socket)
                == topo.socket_pages - PT_PAGES_PER_REPLICA
            )

    def test_socket_pool_exhaustion_raises(self):
        machine = Machine(resolve_machine("2socket8"))
        topo = machine.topology
        for _ in range(topo.socket_pages):
            machine.memory.allocate_socket(0)
        with pytest.raises(OutOfMemoryError):
            machine.memory.allocate_socket(0)


class TestDistanceAwareTiming:
    def test_same_socket_remote_frame_prices_at_socket_speed(self):
        machine = Machine(resolve_machine("2socket8"))
        topo = machine.topology
        timing = machine.timing
        params = machine.config.timing
        frame = machine.memory.allocate_local(1)
        location, fetch, store = timing.ref_costs(0, frame)
        assert location is MemoryLocation.REMOTE
        assert fetch == topo.socket_fetch_us
        assert store == topo.socket_store_us
        location, fetch, store = timing.ref_costs(4, frame)
        assert location is MemoryLocation.REMOTE
        assert fetch == params.remote_fetch_us
        assert store == params.remote_store_us

    def test_own_frame_stays_local(self):
        machine = Machine(resolve_machine("2socket8"))
        params = machine.config.timing
        frame = machine.memory.allocate_local(1)
        location, fetch, _ = machine.timing.ref_costs(1, frame)
        assert location is MemoryLocation.LOCAL
        assert fetch == params.local_fetch_us

    def test_flat_machine_ref_costs_match_location_pricing(self):
        machine = Machine(ace_config(3))
        timing = machine.timing
        frame = machine.memory.allocate_local(1)
        for cpu in range(3):
            location, fetch, store = timing.ref_costs(cpu, frame)
            assert location is frame.location_for(cpu)
            assert fetch == timing.fetch_us(location)
            assert store == timing.store_us(location)


class TestPageTableLayer:
    def test_centralized_walk_cost(self):
        machine = Machine(resolve_machine("2socket8"))
        layer = machine.pagetables
        params = machine.config.timing
        before = machine.cpu(0).system_time_us
        layer.charge_walk(0)
        expected = machine.topology.pt_walk_refs * params.global_fetch_us
        assert layer.walks_global == 1
        assert layer.walks_socket == 0
        assert layer.walk_us == pytest.approx(expected)
        assert machine.cpu(0).system_time_us - before == pytest.approx(
            expected
        )

    def test_replicated_walk_is_cheaper_than_centralized(self):
        config = resolve_machine("2socket8").scaled(page_tables=REPLICATED)
        machine = Machine(config)
        layer = machine.pagetables
        layer.charge_walk(0)
        topo = machine.topology
        socket_cost = topo.pt_walk_refs * topo.socket_fetch_us
        global_cost = (
            topo.pt_walk_refs * machine.config.timing.global_fetch_us
        )
        assert layer.walks_socket == 1
        assert layer.walk_us == pytest.approx(socket_cost)
        assert socket_cost < global_cost

    def test_replicated_update_pays_every_other_socket(self):
        config = resolve_machine("4socket32").scaled(page_tables=REPLICATED)
        machine = Machine(config)
        layer = machine.pagetables
        topo = machine.topology
        params = machine.config.timing
        layer.on_mutation(target_cpu=0, acting_cpu=9)
        expected = topo.socket_store_us + (topo.n_sockets - 1) * (
            params.remote_store_us
        )
        assert layer.updates == 1
        assert layer.pt_replica_shootdowns == topo.n_sockets - 1
        assert layer.update_us == pytest.approx(expected)
        # the acting processor pays, not the target
        assert machine.cpu(9).system_time_us == pytest.approx(expected)
        assert machine.cpu(0).system_time_us == 0.0

    def test_mutation_funnel_reaches_the_layer(self):
        machine = Machine(resolve_machine("2socket8"))
        layer = machine.pagetables
        frame = machine.memory.allocate_local(0)
        from repro.machine.protection import Protection

        machine.cpu(0).enter_translation(
            7, frame, Protection.READ | Protection.WRITE
        )
        assert layer.updates == 1
        machine.cpu(0).remove_translation(7)
        assert layer.updates == 2
