"""The timing model: per-word costs, blocks, copies, zero-fill."""

import pytest

from repro.machine.config import TimingParameters
from repro.machine.timing import MemoryLocation, TimingModel


@pytest.fixture
def timing() -> TimingModel:
    return TimingModel(TimingParameters(), page_size_words=1024)


@pytest.fixture
def flat_timing() -> TimingModel:
    """No bulk-transfer discount, for exact arithmetic."""
    return TimingModel(
        TimingParameters(bulk_transfer_factor=1.0), page_size_words=1024
    )


class TestWordCosts:
    def test_local_fetch(self, timing):
        assert timing.fetch_us(MemoryLocation.LOCAL) == 0.65

    def test_global_fetch(self, timing):
        assert timing.fetch_us(MemoryLocation.GLOBAL) == 1.5

    def test_remote_fetch_slower_than_global(self, timing):
        assert timing.fetch_us(MemoryLocation.REMOTE) > timing.fetch_us(
            MemoryLocation.GLOBAL
        )

    def test_local_store(self, timing):
        assert timing.store_us(MemoryLocation.LOCAL) == 0.84

    def test_global_store(self, timing):
        assert timing.store_us(MemoryLocation.GLOBAL) == 1.4


class TestBlockCosts:
    def test_block_is_linear(self, timing):
        single = timing.block_us(MemoryLocation.LOCAL, 1, 0)
        assert timing.block_us(MemoryLocation.LOCAL, 10, 0) == pytest.approx(
            10 * single
        )

    def test_block_mixes_reads_and_writes(self, timing):
        cost = timing.block_us(MemoryLocation.GLOBAL, 3, 2)
        assert cost == pytest.approx(3 * 1.5 + 2 * 1.4)

    def test_empty_block_is_free(self, timing):
        assert timing.block_us(MemoryLocation.LOCAL, 0, 0) == 0.0

    def test_negative_counts_rejected(self, timing):
        with pytest.raises(ValueError):
            timing.block_us(MemoryLocation.LOCAL, -1, 0)


class TestPageOperations:
    def test_copy_global_to_local(self, flat_timing):
        cost = flat_timing.page_copy_us(
            MemoryLocation.GLOBAL, MemoryLocation.LOCAL
        )
        assert cost == pytest.approx(1024 * (1.5 + 0.84))

    def test_sync_local_to_global(self, flat_timing):
        cost = flat_timing.page_copy_us(
            MemoryLocation.LOCAL, MemoryLocation.GLOBAL
        )
        assert cost == pytest.approx(1024 * (0.65 + 1.4))

    def test_bulk_factor_discounts_copies(self, timing, flat_timing):
        discounted = timing.page_copy_us(
            MemoryLocation.GLOBAL, MemoryLocation.LOCAL
        )
        full = flat_timing.page_copy_us(
            MemoryLocation.GLOBAL, MemoryLocation.LOCAL
        )
        assert discounted == pytest.approx(full * 0.4)

    def test_zero_fill_local_cheaper_than_global(self, timing):
        assert timing.zero_fill_us(MemoryLocation.LOCAL) < timing.zero_fill_us(
            MemoryLocation.GLOBAL
        )

    def test_zero_fill_scales_with_page_size(self):
        small = TimingModel(TimingParameters(), page_size_words=512)
        large = TimingModel(TimingParameters(), page_size_words=1024)
        assert large.zero_fill_us(MemoryLocation.LOCAL) == pytest.approx(
            2 * small.zero_fill_us(MemoryLocation.LOCAL)
        )

    def test_kernel_path_properties_passthrough(self, timing):
        assert timing.fault_overhead_us == TimingParameters().fault_overhead_us
        assert timing.mapping_op_us == TimingParameters().mapping_op_us
        assert timing.shootdown_us == TimingParameters().shootdown_us
