"""Physical memory: frames, pools, content tokens."""

import pytest

from repro.errors import OutOfMemoryError
from repro.machine.config import MachineConfig
from repro.machine.memory import Frame, FrameKind, PhysicalMemory
from repro.machine.timing import MemoryLocation


@pytest.fixture
def memory() -> PhysicalMemory:
    config = MachineConfig(
        n_processors=2, local_pages_per_cpu=4, global_pages=8
    )
    return PhysicalMemory(config)


class TestFrame:
    def test_local_frame_requires_node(self):
        with pytest.raises(ValueError):
            Frame(FrameKind.LOCAL, None, 0)

    def test_global_frame_forbids_node(self):
        with pytest.raises(ValueError):
            Frame(FrameKind.GLOBAL, 1, 0)

    def test_location_for_owner_is_local(self):
        frame = Frame(FrameKind.LOCAL, 1, 0)
        assert frame.location_for(1) is MemoryLocation.LOCAL

    def test_location_for_other_is_remote(self):
        frame = Frame(FrameKind.LOCAL, 1, 0)
        assert frame.location_for(0) is MemoryLocation.REMOTE

    def test_global_frame_is_global_for_everyone(self):
        frame = Frame(FrameKind.GLOBAL, None, 3)
        assert frame.location_for(0) is MemoryLocation.GLOBAL
        assert frame.location_for(5) is MemoryLocation.GLOBAL

    def test_frames_are_value_objects(self):
        assert Frame(FrameKind.GLOBAL, None, 2) == Frame(FrameKind.GLOBAL, None, 2)
        assert Frame(FrameKind.LOCAL, 0, 2) != Frame(FrameKind.LOCAL, 1, 2)

    def test_str_forms(self):
        assert str(Frame(FrameKind.GLOBAL, None, 2)) == "global[2]"
        assert str(Frame(FrameKind.LOCAL, 1, 3)) == "local[cpu1][3]"


class TestAllocation:
    def test_global_allocation_distinct_frames(self, memory):
        frames = {memory.allocate_global() for _ in range(8)}
        assert len(frames) == 8

    def test_global_pool_exhausts(self, memory):
        for _ in range(8):
            memory.allocate_global()
        with pytest.raises(OutOfMemoryError):
            memory.allocate_global()

    def test_local_pools_are_per_cpu(self, memory):
        for _ in range(4):
            memory.allocate_local(0)
        with pytest.raises(OutOfMemoryError):
            memory.allocate_local(0)
        memory.allocate_local(1)  # cpu 1's pool unaffected

    def test_free_returns_frame_to_pool(self, memory):
        frame = memory.allocate_global()
        assert memory.global_available() == 7
        memory.free(frame)
        assert memory.global_available() == 8

    def test_double_free_rejected(self, memory):
        frame = memory.allocate_global()
        memory.free(frame)
        with pytest.raises(OutOfMemoryError):
            memory.free(frame)

    def test_occupancy_counters(self, memory):
        memory.allocate_local(0)
        memory.allocate_local(0)
        assert memory.local_in_use(0) == 2
        assert memory.local_available(0) == 2
        assert memory.local_in_use(1) == 0

    def test_allocated_frames_iterates_everything(self, memory):
        a = memory.allocate_global()
        b = memory.allocate_local(1)
        assert set(memory.allocated_frames()) == {a, b}


class TestContentTokens:
    def test_fresh_frame_holds_token_zero(self, memory):
        frame = memory.allocate_global()
        assert memory.read_token(frame) == 0

    def test_write_then_read(self, memory):
        frame = memory.allocate_local(0)
        memory.write_token(frame, 42)
        assert memory.read_token(frame) == 42

    def test_copy_moves_token(self, memory):
        src = memory.allocate_local(0)
        dst = memory.allocate_global()
        memory.write_token(src, 7)
        memory.copy(src, dst)
        assert memory.read_token(dst) == 7

    def test_freed_frame_loses_contents(self, memory):
        frame = memory.allocate_global()
        memory.write_token(frame, 9)
        memory.free(frame)
        with pytest.raises(OutOfMemoryError):
            memory.read_token(frame)

    def test_unallocated_access_rejected(self, memory):
        ghost = Frame(FrameKind.GLOBAL, None, 3)
        with pytest.raises(OutOfMemoryError):
            memory.write_token(ghost, 1)
