"""The Rosetta-like MMU: translations, protections, the one-VA rule."""

import pytest

from repro.errors import MappingError
from repro.machine.memory import Frame, FrameKind
from repro.machine.mmu import MMU, MMUFault
from repro.machine.protection import PROT_READ, PROT_READ_WRITE, Protection


@pytest.fixture
def mmu() -> MMU:
    return MMU(cpu=0)


def frame(index: int) -> Frame:
    return Frame(FrameKind.GLOBAL, None, index)


class TestEnter:
    def test_enter_and_translate(self, mmu):
        mmu.enter(10, frame(0), PROT_READ)
        assert mmu.translate(10, PROT_READ) == frame(0)

    def test_missing_translation_faults(self, mmu):
        with pytest.raises(MMUFault) as excinfo:
            mmu.translate(10, PROT_READ)
        assert excinfo.value.vpage == 10
        assert excinfo.value.cpu == 0

    def test_insufficient_protection_faults(self, mmu):
        mmu.enter(10, frame(0), PROT_READ)
        with pytest.raises(MMUFault):
            mmu.translate(10, PROT_READ_WRITE)

    def test_write_mapping_allows_reads(self, mmu):
        """WRITE implies READ on the ACE."""
        mmu.enter(10, frame(0), Protection.WRITE)
        assert mmu.translate(10, PROT_READ) == frame(0)

    def test_enter_with_no_rights_rejected(self, mmu):
        with pytest.raises(MappingError):
            mmu.enter(10, frame(0), Protection.NONE)

    def test_one_virtual_address_per_frame(self, mmu):
        """Rosetta's restriction (Section 2.1)."""
        mmu.enter(10, frame(0), PROT_READ)
        with pytest.raises(MappingError):
            mmu.enter(11, frame(0), PROT_READ)

    def test_same_frame_same_vpage_updates_protection(self, mmu):
        mmu.enter(10, frame(0), PROT_READ)
        mmu.enter(10, frame(0), PROT_READ_WRITE)
        assert mmu.translate(10, PROT_READ_WRITE) == frame(0)

    def test_replacing_translation_frees_old_frame_slot(self, mmu):
        mmu.enter(10, frame(0), PROT_READ)
        mmu.enter(10, frame(1), PROT_READ)
        # frame 0 is no longer mapped, so it may appear elsewhere.
        mmu.enter(11, frame(0), PROT_READ)
        assert mmu.translate(11, PROT_READ) == frame(0)

    def test_replacing_translation_drops_reverse_entry(self, mmu):
        """The stale frame must not resolve back to the vpage."""
        mmu.enter(10, frame(0), PROT_READ)
        mmu.enter(10, frame(1), PROT_READ)
        assert mmu.vpage_of(frame(0)) is None
        assert mmu.vpage_of(frame(1)) == 10

    def test_one_vpage_per_frame_violation_reports_both_vpages(self, mmu):
        from repro.errors import MappingError

        mmu.enter(10, frame(0), PROT_READ)
        with pytest.raises(MappingError) as excinfo:
            mmu.enter(11, frame(0), PROT_READ)
        message = str(excinfo.value)
        assert "10" in message and "11" in message


class TestRemove:
    def test_remove_returns_entry(self, mmu):
        mmu.enter(10, frame(0), PROT_READ)
        entry = mmu.remove(10)
        assert entry is not None and entry.frame == frame(0)
        with pytest.raises(MMUFault):
            mmu.translate(10, PROT_READ)

    def test_remove_missing_is_none(self, mmu):
        assert mmu.remove(99) is None

    def test_remove_frame(self, mmu):
        mmu.enter(10, frame(0), PROT_READ)
        entry = mmu.remove_frame(frame(0))
        assert entry is not None and entry.vpage == 10
        assert len(mmu) == 0

    def test_remove_frame_missing_is_none(self, mmu):
        assert mmu.remove_frame(frame(5)) is None

    def test_remove_drops_reverse_entry(self, mmu):
        """After remove, the frame is free to map at another VA."""
        mmu.enter(10, frame(0), PROT_READ)
        mmu.remove(10)
        assert mmu.vpage_of(frame(0)) is None
        mmu.enter(11, frame(0), PROT_READ)
        assert mmu.translate(11, PROT_READ) == frame(0)

    def test_remove_frame_drops_forward_entry(self, mmu):
        mmu.enter(10, frame(0), PROT_READ)
        mmu.remove_frame(frame(0))
        assert mmu.lookup(10) is None


class TestProtect:
    def test_downgrade_causes_write_fault(self, mmu):
        mmu.enter(10, frame(0), PROT_READ_WRITE)
        mmu.protect(10, PROT_READ)
        with pytest.raises(MMUFault):
            mmu.translate(10, PROT_READ_WRITE)
        assert mmu.translate(10, PROT_READ) == frame(0)

    def test_protect_to_none_removes(self, mmu):
        mmu.enter(10, frame(0), PROT_READ)
        mmu.protect(10, Protection.NONE)
        assert mmu.lookup(10) is None

    def test_protect_missing_mapping_rejected(self, mmu):
        with pytest.raises(MappingError):
            mmu.protect(10, PROT_READ)


class TestIntrospection:
    def test_lookup(self, mmu):
        assert mmu.lookup(10) is None
        mmu.enter(10, frame(0), PROT_READ)
        assert mmu.lookup(10).protection == PROT_READ

    def test_vpage_of(self, mmu):
        mmu.enter(10, frame(0), PROT_READ)
        assert mmu.vpage_of(frame(0)) == 10
        assert mmu.vpage_of(frame(1)) is None

    def test_entries_and_len(self, mmu):
        mmu.enter(10, frame(0), PROT_READ)
        mmu.enter(11, frame(1), PROT_READ_WRITE)
        assert len(mmu) == 2
        assert {e.vpage for e in mmu.entries()} == {10, 11}
