"""Property tests for the MMU and address space."""

from typing import Dict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MappingError
from repro.machine.memory import Frame, FrameKind
from repro.machine.mmu import MMU, MMUFault
from repro.machine.protection import PROT_READ, PROT_READ_WRITE
from repro.vm.address_space import AddressSpace, SegmentationFault
from repro.vm.vm_object import shared_object

#: Op encoding: (action, vpage, frame_index, writable)
mmu_ops = st.lists(
    st.tuples(
        st.sampled_from(["enter", "remove", "protect_down", "remove_frame"]),
        st.integers(min_value=0, max_value=7),
        st.integers(min_value=0, max_value=5),
        st.booleans(),
    ),
    max_size=60,
)


class TestMMUModelEquivalence:
    @given(ops=mmu_ops)
    @settings(max_examples=80, deadline=None)
    def test_mmu_matches_a_dictionary_model(self, ops):
        """The MMU behaves like a dict with the one-VA-per-frame rule."""
        mmu = MMU(cpu=0)
        model: Dict[int, tuple] = {}  # vpage -> (frame_index, writable)

        def frame(index):
            return Frame(FrameKind.GLOBAL, None, index)

        for action, vpage, frame_index, writable in ops:
            prot = PROT_READ_WRITE if writable else PROT_READ
            if action == "enter":
                mapped_elsewhere = any(
                    fi == frame_index and vp != vpage
                    for vp, (fi, _) in model.items()
                )
                if mapped_elsewhere:
                    try:
                        mmu.enter(vpage, frame(frame_index), prot)
                        raise AssertionError("one-VA rule not enforced")
                    except MappingError:
                        pass
                else:
                    mmu.enter(vpage, frame(frame_index), prot)
                    model[vpage] = (frame_index, writable)
            elif action == "remove":
                mmu.remove(vpage)
                model.pop(vpage, None)
            elif action == "remove_frame":
                mmu.remove_frame(frame(frame_index))
                model = {
                    vp: entry
                    for vp, entry in model.items()
                    if entry[0] != frame_index
                }
            elif action == "protect_down":
                if vpage in model:
                    mmu.protect(vpage, PROT_READ)
                    model[vpage] = (model[vpage][0], False)

            # The MMU and the model must agree on every address.
            for vp in range(8):
                entry = mmu.lookup(vp)
                if vp in model:
                    expected_frame, expected_writable = model[vp]
                    assert entry is not None
                    assert entry.frame.index == expected_frame
                    assert entry.protection.writable == expected_writable
                else:
                    assert entry is None
            assert len(mmu) == len(model)

    @given(ops=mmu_ops)
    @settings(max_examples=40, deadline=None)
    def test_translate_agrees_with_lookup(self, ops):
        mmu = MMU(cpu=0)
        for action, vpage, frame_index, writable in ops:
            if action != "enter":
                continue
            try:
                mmu.enter(
                    vpage,
                    Frame(FrameKind.GLOBAL, None, frame_index),
                    PROT_READ_WRITE if writable else PROT_READ,
                )
            except MappingError:
                continue
        for vpage in range(8):
            entry = mmu.lookup(vpage)
            if entry is None:
                try:
                    mmu.translate(vpage, PROT_READ)
                    raise AssertionError("translate hit an unmapped page")
                except MMUFault:
                    pass
            else:
                assert mmu.translate(vpage, PROT_READ) == entry.frame


class TestAddressSpaceProperties:
    @given(
        sizes=st.lists(
            st.integers(min_value=1, max_value=16), min_size=1, max_size=12
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_sequential_mappings_never_overlap(self, sizes):
        space = AddressSpace()
        regions = [
            space.map_object(shared_object(f"o{i}", size))
            for i, size in enumerate(sizes)
        ]
        for a in regions:
            for b in regions:
                if a is b:
                    continue
                assert (
                    a.end_vpage <= b.start_vpage
                    or b.end_vpage <= a.start_vpage
                )

    @given(
        sizes=st.lists(
            st.integers(min_value=1, max_value=16), min_size=1, max_size=12
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_resolve_partitions_the_space(self, sizes):
        """Every vpage resolves to exactly the region containing it, and
        guard pages fault."""
        space = AddressSpace()
        regions = [
            space.map_object(shared_object(f"o{i}", size))
            for i, size in enumerate(sizes)
        ]
        for region in regions:
            for vpage in region.vpages():
                found, offset = space.resolve(vpage)
                assert found is region
                assert region.vpage_at(offset) == vpage
            try:
                space.resolve(region.end_vpage)
                guarded = False
            except SegmentationFault:
                guarded = True
            # The page after a region is either a guard hole or the next
            # region's start; with sequential mapping it is always a hole.
            assert guarded
