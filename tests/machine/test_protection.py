"""The hardware protection lattice."""

import pytest

from repro.machine.protection import (
    PROT_NONE,
    PROT_READ,
    PROT_READ_WRITE,
    Protection,
)


class TestProtection:
    def test_none_grants_nothing(self):
        assert not PROT_NONE.readable
        assert not PROT_NONE.writable

    def test_read_grants_reads_only(self):
        assert PROT_READ.readable
        assert not PROT_READ.writable

    def test_read_write_grants_both(self):
        assert PROT_READ_WRITE.readable
        assert PROT_READ_WRITE.writable

    def test_write_implies_read_after_normalization(self):
        """The ACE has no write-only pages."""
        normalized = Protection.WRITE.normalized()
        assert normalized.readable
        assert normalized.writable

    def test_normalize_is_idempotent(self):
        for prot in (PROT_NONE, PROT_READ, PROT_READ_WRITE):
            assert prot.normalized() == prot.normalized().normalized()

    def test_allows_is_the_lattice_order(self):
        assert PROT_READ_WRITE.allows(PROT_READ)
        assert PROT_READ_WRITE.allows(PROT_READ_WRITE)
        assert PROT_READ.allows(PROT_NONE)
        assert not PROT_READ.allows(PROT_READ_WRITE)
        assert not PROT_NONE.allows(PROT_READ)

    def test_everything_allows_none(self):
        for prot in (PROT_NONE, PROT_READ, PROT_READ_WRITE):
            assert prot.allows(PROT_NONE)

    @pytest.mark.parametrize(
        "a, b",
        [
            (PROT_READ, PROT_READ),
            (PROT_READ_WRITE, PROT_READ_WRITE),
        ],
    )
    def test_allows_is_reflexive(self, a, b):
        assert a.allows(b)

    def test_flag_composition(self):
        combined = Protection.READ | Protection.WRITE
        assert combined == PROT_READ_WRITE
