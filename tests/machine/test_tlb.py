"""The per-CPU software TLB: lookups, fills, and the shootdown funnel."""

import pytest

from repro.machine.memory import Frame, FrameKind
from repro.machine.protection import PROT_READ, PROT_READ_WRITE
from repro.machine.timing import MemoryLocation
from repro.machine.tlb import DEFAULT_TLB_ENTRIES, SoftwareTLB
from repro.vm.vm_object import shared_object
from tests.conftest import make_rig


def frame(index: int) -> Frame:
    return Frame(FrameKind.GLOBAL, None, index)


def fill(tlb, vpage, prot=PROT_READ_WRITE, index=0):
    return tlb.fill(
        vpage, frame(index), prot, MemoryLocation.GLOBAL, 2.6, 3.0
    )


class TestLookup:
    def test_miss_then_hit(self):
        tlb = SoftwareTLB(cpu_id=0)
        assert tlb.lookup(10) is None
        fill(tlb, 10)
        entry = tlb.lookup(10)
        assert entry is not None and entry.frame == frame(0)
        assert tlb.hits == 1 and tlb.misses == 1

    def test_write_lookup_on_read_only_entry_is_a_miss(self):
        """A protection upgrade must trap to the slow path."""
        tlb = SoftwareTLB(cpu_id=0)
        fill(tlb, 10, prot=PROT_READ)
        assert tlb.lookup(10, need_write=True) is None
        assert tlb.misses == 1
        # ...but the read-only entry stays cached for later reads.
        assert tlb.lookup(10, need_write=False) is not None

    def test_hit_ratio_none_before_lookups(self):
        tlb = SoftwareTLB(cpu_id=0)
        assert tlb.hit_ratio is None
        tlb.lookup(10)
        assert tlb.hit_ratio == 0.0

    def test_entry_caches_latency_class(self):
        tlb = SoftwareTLB(cpu_id=0)
        fill(tlb, 10)
        entry = tlb.lookup(10)
        assert entry.location is MemoryLocation.GLOBAL
        assert entry.fetch_us == 2.6 and entry.store_us == 3.0
        assert entry.writable and not entry.writable_data


class TestFillAndEvict:
    def test_fifo_eviction_at_capacity(self):
        tlb = SoftwareTLB(cpu_id=0, capacity=2)
        fill(tlb, 10, index=0)
        fill(tlb, 11, index=1)
        fill(tlb, 12, index=2)  # evicts vpage 10, the oldest
        assert tlb.lookup(10) is None
        assert tlb.lookup(11) is not None
        assert tlb.lookup(12) is not None
        assert tlb.evictions == 1 and len(tlb) == 2

    def test_refresh_does_not_evict(self):
        tlb = SoftwareTLB(cpu_id=0, capacity=2)
        fill(tlb, 10)
        fill(tlb, 11)
        fill(tlb, 10, prot=PROT_READ)  # refresh in place
        assert tlb.evictions == 0 and len(tlb) == 2
        assert not tlb.lookup(10).writable

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            SoftwareTLB(cpu_id=0, capacity=0)

    def test_default_capacity(self):
        assert SoftwareTLB(0).capacity == DEFAULT_TLB_ENTRIES


class TestInvalidate:
    def test_same_cpu_invalidation_is_not_a_shootdown(self):
        tlb = SoftwareTLB(cpu_id=0)
        fill(tlb, 10)
        assert tlb.invalidate(10, acting_cpu=0)
        assert tlb.invalidations == 1 and tlb.shootdowns == 0

    def test_cross_cpu_invalidation_counts_a_shootdown(self):
        tlb = SoftwareTLB(cpu_id=0)
        fill(tlb, 10)
        assert tlb.invalidate(10, acting_cpu=3)
        assert tlb.shootdowns == 1 and tlb.invalidations == 1

    def test_shootdown_counted_even_when_nothing_cached(self):
        """The IPI is sent whether or not the slot was live."""
        tlb = SoftwareTLB(cpu_id=0)
        assert not tlb.invalidate(99, acting_cpu=1)
        assert tlb.shootdowns == 1 and tlb.invalidations == 0

    def test_flush_drops_everything(self):
        tlb = SoftwareTLB(cpu_id=0)
        fill(tlb, 10)
        fill(tlb, 11, index=1)
        assert tlb.flush() == 2
        assert len(tlb) == 0
        assert tlb.flushes == 1 and tlb.invalidations == 2

    def test_counters_snapshot_keys(self):
        counters = SoftwareTLB(0).counters()
        assert set(counters) == {
            "hits", "misses", "fills", "evictions", "invalidations",
            "shootdowns", "flushes",
        }


class TestCPUFunnel:
    """Every MMU mutation through the CPU drops the cached entry."""

    def _mapped_and_cached(self, rig, cpu=0):
        region = rig.space.map_object(shared_object("data", 2))
        vpage = region.vpage_at(0)
        page = rig.pool.resident_or_allocate(region.vm_object, 0)
        rig.pmap.pmap_enter(
            vpage, page, PROT_READ_WRITE, PROT_READ_WRITE, cpu=cpu
        )
        target = rig.machine.cpu(cpu)
        live = target.mmu.lookup(vpage)
        target.tlb.fill(
            vpage,
            live.frame,
            live.protection,
            live.frame.location_for(cpu),
            2.6,
            3.0,
        )
        assert target.tlb.lookup(vpage) is not None
        return region, vpage, target

    def test_remove_translation_invalidates(self):
        rig = make_rig()
        _, vpage, target = self._mapped_and_cached(rig)
        target.remove_translation(vpage, acting_cpu=0)
        assert target.tlb.lookup(vpage) is None

    def test_protect_translation_invalidates(self):
        rig = make_rig()
        _, vpage, target = self._mapped_and_cached(rig)
        target.protect_translation(vpage, PROT_READ, acting_cpu=0)
        assert target.tlb.lookup(vpage) is None

    def test_pmap_remove_all_shoots_down_every_tlb(self):
        """Coherence under the protocol's broadest invalidation."""
        rig = make_rig()
        region, vpage, target = self._mapped_and_cached(rig)
        page = rig.pool.resident_or_allocate(region.vm_object, 0)
        before = target.tlb.shootdowns
        rig.numa.remove_all_mappings(page, acting_cpu=2)
        assert target.tlb.lookup(vpage) is None
        assert target.tlb.shootdowns == before + 1
        # And nothing anywhere still caches a translation the MMU lost.
        for cpu in rig.machine.cpus:
            for cached in cpu.tlb.entries():
                assert cpu.mmu.lookup(cached.vpage) is not None
