"""Per-CPU time accounting and reference counters."""

import pytest

from repro.machine.cpu import CPU, ReferenceCounters
from repro.machine.machine import Machine
from repro.machine.config import MachineConfig
from repro.machine.timing import MemoryLocation


class TestCPU:
    def test_time_charging(self):
        cpu = CPU(0)
        cpu.charge_user(10.0)
        cpu.charge_system(5.0)
        cpu.charge_user(2.5)
        assert cpu.user_time_us == 12.5
        assert cpu.system_time_us == 5.0
        assert cpu.total_time_us == 17.5

    def test_negative_charge_rejected(self):
        cpu = CPU(0)
        with pytest.raises(ValueError):
            cpu.charge_user(-1.0)
        with pytest.raises(ValueError):
            cpu.charge_system(-1.0)

    def test_reset_times(self):
        cpu = CPU(0)
        cpu.charge_user(3.0)
        cpu.reset_times()
        assert cpu.total_time_us == 0.0

    def test_cpu_owns_an_mmu_with_its_id(self):
        assert CPU(3).mmu.cpu == 3


class TestReferenceCounters:
    def test_record_and_totals(self):
        counters = ReferenceCounters()
        counters.record(MemoryLocation.LOCAL, reads=5, writes=2)
        counters.record(MemoryLocation.GLOBAL, reads=1, writes=0)
        assert counters.total() == 8
        assert counters.total_to(MemoryLocation.LOCAL) == 7
        assert counters.total_to(MemoryLocation.GLOBAL) == 1
        assert counters.total_to(MemoryLocation.REMOTE) == 0

    def test_merged_with(self):
        a = ReferenceCounters()
        b = ReferenceCounters()
        a.record(MemoryLocation.LOCAL, 3, 1)
        b.record(MemoryLocation.LOCAL, 2, 2)
        b.record(MemoryLocation.GLOBAL, 0, 4)
        merged = a.merged_with(b)
        assert merged.total_to(MemoryLocation.LOCAL) == 8
        assert merged.total_to(MemoryLocation.GLOBAL) == 4
        # merge does not mutate the operands
        assert a.total() == 4
        assert b.total() == 8


class TestMachine:
    def test_machine_builds_cpus(self):
        machine = Machine(MachineConfig(n_processors=3))
        assert machine.n_cpus == 3
        assert [c.id for c in machine.cpus] == [0, 1, 2]
        assert machine.cpu(2).id == 2

    def test_machine_total_times(self):
        machine = Machine(MachineConfig(n_processors=2))
        machine.cpu(0).charge_user(10)
        machine.cpu(1).charge_user(5)
        machine.cpu(1).charge_system(3)
        assert machine.total_user_time_us() == 15
        assert machine.total_system_time_us() == 3

    def test_machine_timing_uses_config_page_size(self):
        machine = Machine(MachineConfig(page_size_words=512))
        assert machine.timing.page_size_words == 512
