"""RunSpec topology fields: fingerprints, labels, machine resolution."""

import os
import subprocess
import sys

import pytest

import repro
from repro.errors import ConfigurationError
from repro.exp.spec import RunSpec

#: Fingerprints captured before the topology fields existed.  The new
#: ``machine_name``/``page_tables`` fields enter the key only when
#: non-default, so every pre-topology fingerprint must be reproduced
#: exactly by the current code.
GOLDEN_FPS = {
    "default ParMult":
        ("fd4bbadf7eaa1e358b42e9a96c8ae646724d97e7c6c85c0153eba4956"
         "e8e3f44"),
    "quick all-global":
        ("10149f776c33f807799bf713eab847c475cf411eacfa40ae217e62f43"
         "33c66cf"),
    "transient seed 3":
        ("706e0cf4a99e4e6b1cf8b0f82bda74240544a9f9e35d5ad92dcb065fa"
         "291dcaa"),
}


class TestFingerprintBackCompat:
    def test_default_spec(self):
        spec = RunSpec(workload="ParMult")
        assert spec.fingerprint() == GOLDEN_FPS["default ParMult"]

    def test_quick_all_global(self):
        spec = RunSpec(workload="Gauss", quick=True, policy="all-global")
        assert spec.fingerprint() == GOLDEN_FPS["quick all-global"]

    def test_chaos_spec(self):
        spec = RunSpec(
            workload="ParMult", fault_profile="transient", fault_seed=3
        )
        assert spec.fingerprint() == GOLDEN_FPS["transient seed 3"]

    def test_explicit_defaults_do_not_perturb_the_key(self):
        plain = RunSpec(workload="ParMult")
        explicit = RunSpec(
            workload="ParMult", machine_name="ace", page_tables="centralized"
        )
        assert explicit.key() == plain.key()
        assert explicit.fingerprint() == plain.fingerprint()

    def test_topology_fields_enter_the_key_when_set(self):
        plain = RunSpec(workload="ParMult")
        topo = RunSpec(workload="ParMult", machine_name="4socket32")
        repl = RunSpec(
            workload="ParMult",
            machine_name="4socket32",
            page_tables="replicated",
        )
        assert topo.fingerprint() != plain.fingerprint()
        assert repl.fingerprint() != topo.fingerprint()
        assert "machine_name" not in dict(plain.key())
        assert dict(topo.key())["machine_name"] == "4socket32"
        assert dict(repl.key())["page_tables"] == "replicated"


class TestTopologySpecs:
    def test_label_names_the_machine(self):
        spec = RunSpec(workload="ParMult", machine_name="2socket8")
        assert spec.label.endswith("2socket8")
        repl = RunSpec(
            workload="ParMult",
            machine_name="4socket32",
            page_tables="replicated",
        )
        assert repl.label.endswith("4socket32:replicated")

    def test_resolves_registry_machine(self):
        spec = RunSpec(
            workload="ParMult",
            machine_name="4socket32",
            page_tables="replicated",
        )
        config = spec.resolve_machine_config()
        assert config.n_processors == 32
        assert config.page_tables == "replicated"
        assert config.topology.name == "4socket32"

    def test_ace_default_resolves_to_none(self):
        assert RunSpec(workload="ParMult").resolve_machine_config() is None

    def test_unknown_machine_raises_and_is_not_declarative(self):
        spec = RunSpec(workload="ParMult", machine_name="nosuch")
        with pytest.raises(ConfigurationError):
            spec.resolve_machine_config()
        assert not spec.is_declarative()

    def test_registry_machines_are_declarative(self):
        for name in ("ace", "2socket8", "4socket32"):
            assert RunSpec(workload="ParMult", machine_name=name).is_declarative()


class TestCrossProcessStability:
    def test_topology_fingerprint_stable_across_processes(self):
        """The cache key contract: fingerprints must not depend on
        per-process state (hash seeds, dict order, import order)."""
        spec = RunSpec(
            workload="ParMult",
            machine_name="4socket32",
            page_tables="replicated",
            fault_profile="transient",
            fault_seed=3,
        )
        src = os.path.dirname(os.path.dirname(repro.__file__))
        code = (
            "from repro.exp.spec import RunSpec;"
            "print(RunSpec(workload='ParMult', machine_name='4socket32',"
            " page_tables='replicated', fault_profile='transient',"
            " fault_seed=3).fingerprint())"
        )
        env = dict(os.environ, PYTHONPATH=src, PYTHONHASHSEED="99")
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, env=env, check=True,
        )
        assert out.stdout.strip() == spec.fingerprint()
