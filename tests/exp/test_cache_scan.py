"""Cache scanning: classification, read-only robustness, gc by reason.

A report built from ``.repro-cache/`` must survive whatever it finds
there — crashed-run temp files, hand-edited entries, files written by
other tools, entries from older schemas — so :meth:`ResultCache.scan`
maps every failure mode to a precise skip reason instead of raising,
and :meth:`ResultCache.gc` only ever prunes files the scanner already
refuses to serve.
"""

import json

import pytest

from repro.errors import ConfigurationError
from repro.exp.cache import (
    CACHE_SCHEMA,
    SKIP_REASONS,
    CacheEntry,
    ResultCache,
    SkippedFile,
)
from repro.exp.spec import RunSpec


def _spec(**overrides):
    params = dict(workload="ParMult", quick=True, n_processors=2)
    params.update(overrides)
    return RunSpec(**params)


@pytest.fixture
def warm(tmp_path):
    """A cache holding one plain run and one chaos run."""
    cache = ResultCache(tmp_path)
    run = _spec()
    chaos = _spec(fault_profile="transient", fault_seed=1)
    cache.put(run, run.execute())
    cache.put(chaos, chaos.execute())
    return cache, run, chaos


class TestScanValidEntries:
    def test_scan_rebuilds_spec_and_outcome(self, warm):
        cache, run, chaos = warm
        scan = cache.scan()
        assert not scan.skipped
        assert scan.schema == CACHE_SCHEMA
        by_fp = scan.by_fingerprint()
        assert set(by_fp) == {run.fingerprint(), chaos.fingerprint()}
        entry = by_fp[run.fingerprint()]
        assert isinstance(entry, CacheEntry)
        assert entry.spec == run
        assert entry.outcome.kind == "run"
        assert entry.size_bytes == entry.path.stat().st_size
        assert by_fp[chaos.fingerprint()].outcome.kind == "chaos"

    def test_scan_order_is_stable(self, warm):
        cache, _, _ = warm
        first = [e.fingerprint for e in cache.scan().entries]
        second = [e.fingerprint for e in cache.scan().entries]
        assert first == second == sorted(first)

    def test_scan_of_missing_root_is_empty(self, tmp_path):
        scan = ResultCache(tmp_path / "never-created").scan()
        assert scan.entries == [] and scan.skipped == []


class TestClassification:
    """Every non-entry maps to one of the SKIP_REASONS buckets."""

    def test_tmp_file(self, warm):
        cache, run, _ = warm
        path = cache.path_for(run)
        stray = path.with_name(f".tmp-{path.name}")
        stray.write_text("{}")
        item = cache.classify(stray)
        assert isinstance(item, SkippedFile)
        assert item.reason == "tmp"

    def test_foreign_non_json_file(self, warm):
        cache, _, _ = warm
        stray = cache.root / "README.txt"
        stray.write_text("not a cache entry")
        assert cache.classify(stray).reason == "foreign"

    def test_foreign_json_non_object(self, warm):
        cache, _, _ = warm
        stray = cache.root / "aa" / "list.json"
        stray.parent.mkdir(exist_ok=True)
        stray.write_text("[1, 2, 3]")
        assert cache.classify(stray).reason == "foreign"

    def test_corrupt_unparseable(self, warm):
        cache, run, _ = warm
        cache.path_for(run).write_text("{truncated")
        item = cache.classify(cache.path_for(run))
        assert item.reason == "corrupt"
        assert item.detail  # carries the parse error

    def test_corrupt_bad_payload(self, warm):
        cache, run, _ = warm
        path = cache.path_for(run)
        entry = json.loads(path.read_text())
        del entry["outcome"]
        path.write_text(json.dumps(entry))
        assert cache.classify(path).reason == "corrupt"

    def test_schema_mismatch(self, warm):
        cache, run, _ = warm
        path = cache.path_for(run)
        entry = json.loads(path.read_text())
        entry["schema"] = "repro-exp-cache/v0"
        path.write_text(json.dumps(entry))
        item = cache.classify(path)
        assert item.reason == "schema-mismatch"
        assert "repro-exp-cache/v0" in item.detail

    def test_fingerprint_mismatch(self, warm):
        cache, run, _ = warm
        entry_text = cache.path_for(run).read_text()
        wrong = cache.root / "00" / ("0" * 64 + ".json")
        wrong.parent.mkdir(exist_ok=True)
        wrong.write_text(entry_text)
        assert cache.classify(wrong).reason == "fingerprint-mismatch"

    def test_all_observed_reasons_are_declared(self, warm):
        cache, run, _ = warm
        (cache.root / "junk.bin").write_text("x")
        (cache.root / ".tmp-x.json").write_text("x")
        cache.path_for(run).write_text("{bad")
        scan = cache.scan()
        assert set(scan.skipped_by_reason()) <= set(SKIP_REASONS)


class TestScanRobustness:
    def test_scan_survives_a_hostile_directory(self, warm):
        """Corrupt, stale, foreign and temp files all skip, never raise."""
        cache, run, chaos = warm
        (cache.root / "notes.md").write_text("# notes")
        (cache.root / ".tmp-leftover.json").write_text("{")
        bad = cache.root / "zz" / "zz00.json"
        bad.parent.mkdir()
        bad.write_text("\x00\x01garbage")
        stale_path = cache.path_for(run)
        stale = json.loads(stale_path.read_text())
        stale["schema"] = "other/v9"
        stale_path.write_text(json.dumps(stale))

        scan = cache.scan()
        assert [e.fingerprint for e in scan.entries] == [chaos.fingerprint()]
        assert scan.skipped_by_reason() == {
            "foreign": 1,
            "tmp": 1,
            "corrupt": 1,
            "schema-mismatch": 1,
        }

    def test_scan_is_read_only(self, warm):
        cache, run, _ = warm
        cache.path_for(run).write_text("{bad")
        before = sorted(p.name for p in cache.root.rglob("*") if p.is_file())
        cache.scan()
        after = sorted(p.name for p in cache.root.rglob("*") if p.is_file())
        assert before == after, "scan must report, never unlink"


class TestGc:
    def test_gc_removes_only_the_named_reasons(self, warm):
        cache, run, chaos = warm
        stale_path = cache.path_for(run)
        stale = json.loads(stale_path.read_text())
        stale["schema"] = "other/v9"
        stale_path.write_text(json.dumps(stale))
        foreign = cache.root / "stray.txt"
        foreign.write_text("x")

        removed = cache.gc(["schema-mismatch"])
        assert [item.reason for item in removed] == ["schema-mismatch"]
        assert not stale_path.exists()
        assert foreign.exists(), "unrequested reasons are untouched"
        assert cache.get(chaos) is not None, "valid entries are never gc'd"

    def test_gc_dry_run_removes_nothing(self, warm):
        cache, run, _ = warm
        cache.path_for(run).write_text("{bad")
        doomed = cache.gc(["corrupt"], dry_run=True)
        assert len(doomed) == 1
        assert cache.path_for(run).exists()

    def test_gc_rejects_unknown_reasons(self, warm):
        cache, _, _ = warm
        with pytest.raises(ConfigurationError):
            cache.gc(["stale"])  # not a SKIP_REASONS member

    def test_gc_collects_stale_tmp_files(self, warm):
        cache, run, _ = warm
        leftover = cache.root / f".tmp-{run.fingerprint()}.json"
        leftover.write_text("{half-written")
        removed = cache.gc(["tmp"])
        assert [item.path for item in removed] == [leftover]
        assert not leftover.exists()

    def test_gc_tmp_min_age_spares_fresh_writes(self, warm):
        """A temp file younger than the guard may be a live batch's
        atomic write still in flight — gc must keep it."""
        cache, run, _ = warm
        fresh = cache.root / ".tmp-fresh.json"
        fresh.write_text("{")
        assert cache.gc(["tmp"], tmp_min_age_s=3600.0) == []
        assert fresh.exists()

        import os
        import time

        old = cache.root / ".tmp-old.json"
        old.write_text("{")
        past = time.time() - 7200
        os.utime(old, (past, past))
        removed = cache.gc(["tmp"], tmp_min_age_s=3600.0)
        assert [item.path for item in removed] == [old]
        assert fresh.exists() and not old.exists()

    def test_gc_tmp_age_guard_only_applies_to_tmp(self, warm):
        cache, run, _ = warm
        cache.path_for(run).write_text("{bad")
        removed = cache.gc(["corrupt"], tmp_min_age_s=3600.0)
        assert [item.reason for item in removed] == ["corrupt"]


class TestStats:
    def test_stats_aggregates_the_scan(self, warm):
        cache, run, chaos = warm
        (cache.root / "stray.txt").write_text("x")
        stats = cache.stats()
        assert stats["schema"] == CACHE_SCHEMA
        assert stats["entries"] == 2
        assert stats["kinds"] == {"chaos": 1, "run": 1}
        assert stats["workloads"] == {"ParMult": 2}
        assert stats["policies"] == {"move-threshold": 2}
        assert stats["skipped"] == {"foreign": 1}
        assert stats["bytes"] == sum(
            e.size_bytes for e in cache.scan().entries
        )
