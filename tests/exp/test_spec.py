"""RunSpec: identity, fingerprints, resolution, and execution."""

import subprocess
import sys

import pytest

from repro.errors import ConfigurationError
from repro.exp.spec import (
    POLICY_REGISTRY,
    SPEC_SCHEMA,
    Outcome,
    RunSpec,
    resolve_policy,
    resolve_workload,
)


class TestIdentity:
    def test_key_round_trips(self):
        spec = RunSpec(
            workload="ParMult", quick=True, threshold=2, n_processors=3
        )
        assert RunSpec.from_key(spec.key()) == spec

    def test_from_key_rejects_unknown_fields(self):
        key = RunSpec(workload="ParMult").key()
        key["surprise"] = 1
        with pytest.raises(ConfigurationError, match="surprise"):
            RunSpec.from_key(key)

    def test_fingerprint_is_order_insensitive(self):
        spec = RunSpec(workload="FFT", quick=True)
        key = spec.key()
        shuffled = dict(reversed(list(key.items())))
        assert RunSpec.from_key(shuffled).fingerprint() == spec.fingerprint()

    def test_fingerprint_distinguishes_parameters(self):
        base = RunSpec(workload="ParMult", quick=True)
        fingerprints = {
            base.fingerprint(),
            RunSpec(workload="ParMult").fingerprint(),
            RunSpec(workload="ParMult", quick=True, threshold=0).fingerprint(),
            RunSpec(workload="ParMult", quick=True, fault_seed=1).fingerprint(),
            RunSpec(workload="FFT", quick=True).fingerprint(),
        }
        assert len(fingerprints) == 5

    def test_fingerprint_is_salted_by_schema(self):
        spec = RunSpec(workload="ParMult")
        assert SPEC_SCHEMA.startswith("repro-exp/")
        # Recomputing by hand with the schema salt reproduces the value.
        import hashlib

        manual = hashlib.sha256(
            (SPEC_SCHEMA + "\n" + spec.canonical_json()).encode()
        ).hexdigest()
        assert manual == spec.fingerprint()

    def test_fingerprint_stable_across_processes(self):
        """Content addressing must not depend on process state (hash
        randomization, import order) — a cache written by one process
        must be readable by the next."""
        spec = RunSpec(workload="Primes3", quick=True, threshold=8)
        script = (
            "from repro.exp.spec import RunSpec; "
            "print(RunSpec(workload='Primes3', quick=True, threshold=8)"
            ".fingerprint())"
        )
        child = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            check=True,
        )
        assert child.stdout.strip() == spec.fingerprint()

    def test_label_is_human_readable(self):
        spec = RunSpec(workload="ParMult", quick=True)
        assert "ParMult" in spec.label
        assert "move-threshold" in spec.label


class TestResolution:
    def test_resolve_workload_case_insensitive(self):
        assert resolve_workload("parmult").name == "ParMult"

    def test_resolve_workload_quick_uses_small_instances(self):
        full = resolve_workload("ParMult")
        quick = resolve_workload("ParMult", quick=True)
        assert quick.name == full.name
        assert quick is not full

    def test_resolve_workload_unknown_raises_with_menu(self):
        with pytest.raises(ConfigurationError, match="ParMult"):
            resolve_workload("nope")

    def test_resolve_policy_registry_covers_paper_policies(self):
        for name in ("move-threshold", "all-global", "all-local"):
            assert name in POLICY_REGISTRY
        policy = resolve_policy("move-threshold", threshold=9)
        assert policy.threshold == 9

    def test_resolve_policy_unknown_raises(self):
        with pytest.raises(ConfigurationError):
            resolve_policy("nope", threshold=4)


class TestExecution:
    def test_run_produces_the_workloads_result(self):
        spec = RunSpec(workload="ParMult", quick=True, n_processors=3)
        result = spec.run()
        assert result.workload == "ParMult"
        assert result.n_processors == 3
        assert result.user_time_us > 0

    def test_execute_wraps_plain_runs(self):
        outcome = RunSpec(workload="ParMult", quick=True).execute()
        assert outcome.kind == "run"
        assert outcome.result is not None and outcome.chaos is None

    def test_execute_routes_fault_profiles_to_chaos(self):
        outcome = RunSpec(
            workload="ParMult",
            quick=True,
            fault_profile="transient",
            fault_seed=3,
        ).execute()
        assert outcome.kind == "chaos"
        assert outcome.chaos.profile == "transient"
        assert outcome.chaos.seed == 3

    def test_outcome_round_trips_both_kinds(self):
        for spec in (
            RunSpec(workload="ParMult", quick=True),
            RunSpec(workload="ParMult", quick=True, fault_profile="transient"),
        ):
            outcome = spec.execute()
            rebuilt = Outcome.from_dict(outcome.as_dict())
            assert rebuilt.to_json() == outcome.to_json()

    def test_declarative_spec_is_deterministic(self):
        spec = RunSpec(workload="ParMult", quick=True)
        assert spec.is_declarative()
        assert spec.run().to_json() == spec.run().to_json()

    def test_unknown_registry_names_are_not_declarative(self):
        assert not RunSpec(workload="nope").is_declarative()
        assert not RunSpec(workload="ParMult", policy="nope").is_declarative()


class TestPolicyParams:
    """policy_params: spec identity, labels, and fingerprint freeze."""

    def test_default_fingerprints_are_frozen(self):
        """The exact pre-policy_params bytes, pinned.

        Empty ``policy_params`` must stay out of the canonical key so
        every result cache written before the field existed still
        resolves.  If this test fails, cached results were orphaned.
        """
        assert RunSpec(workload="ParMult").fingerprint() == (
            "fd4bbadf7eaa1e358b42e9a96c8ae646724d97e7c6c85c0153eba4956e8e3f44"
        )
        assert RunSpec(workload="ParMult", quick=True).fingerprint() == (
            "6a636ae6dd91ac38972feda937d827ef777e1058b34c41f5d75c0352f0ddda47"
        )

    def test_empty_params_stay_out_of_the_key(self):
        spec = RunSpec(workload="ParMult", policy_params=())
        assert "policy_params" not in spec.key()
        assert spec.fingerprint() == RunSpec(workload="ParMult").fingerprint()

    def test_params_enter_key_and_fingerprint(self):
        spec = RunSpec(
            workload="ParMult", policy="bandit",
            policy_params=(("seed", 7),),
        )
        assert spec.key()["policy_params"] == {"seed": 7}
        assert (
            spec.fingerprint()
            != RunSpec(workload="ParMult", policy="bandit").fingerprint()
        )
        assert RunSpec.from_key(spec.key()) == spec

    def test_params_are_order_insensitive(self):
        a = RunSpec(
            workload="ParMult", policy="bandit",
            policy_params=(("seed", 7), ("epsilon", 0.2)),
        )
        b = RunSpec(
            workload="ParMult", policy="bandit",
            policy_params=(("epsilon", 0.2), ("seed", 7)),
        )
        assert a.fingerprint() == b.fingerprint()

    def test_params_accept_mappings(self):
        spec = RunSpec(
            workload="ParMult", policy="bandit",
            policy_params={"seed": 7},
        )
        assert spec.policy_params == (("seed", 7),)

    def test_param_fingerprint_stable_across_processes(self):
        spec = RunSpec(
            workload="Gfetch", policy="bandit",
            policy_params=(("seed", 7), ("epsilon", 0.2)),
        )
        script = (
            "from repro.exp.spec import RunSpec; "
            "print(RunSpec(workload='Gfetch', policy='bandit', "
            "policy_params=(('seed', 7), ('epsilon', 0.2))).fingerprint())"
        )
        child = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            check=True,
        )
        assert child.stdout.strip() == spec.fingerprint()

    def test_label_shows_the_params(self):
        spec = RunSpec(
            workload="ParMult", policy="bandit",
            policy_params=(("seed", 7),),
        )
        assert "bandit(seed=7)" in spec.label

    def test_resolve_policy_applies_the_params(self):
        spec = RunSpec(
            workload="ParMult", policy="adaptive-threshold",
            threshold=6, policy_params=(("backoff", 3.0),),
        )
        policy = spec.resolve_policy()
        assert policy.params()["threshold"] == 6
        assert policy.params()["backoff"] == 3.0

    def test_bad_params_are_rejected_before_running(self):
        spec = RunSpec(
            workload="ParMult", policy="bandit",
            policy_params=(("nosuch", 1),),
        )
        with pytest.raises(ConfigurationError, match="nosuch"):
            spec.resolve_policy()
        assert not spec.is_declarative()
