"""ResultCache: content-addressed hit/miss/invalidate round-trips."""

import json

from repro.exp.cache import CACHE_SCHEMA, ResultCache
from repro.exp.spec import RunSpec


def _spec(**overrides):
    params = dict(workload="ParMult", quick=True, n_processors=2)
    params.update(overrides)
    return RunSpec(**params)


class TestRoundTrip:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = _spec()
        assert cache.get(spec) is None
        outcome = spec.execute()
        cache.put(spec, outcome)
        hit = cache.get(spec)
        assert hit is not None
        assert hit.to_json() == outcome.to_json()
        assert cache.misses == 1 and cache.hits == 1

    def test_chaos_outcomes_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = _spec(fault_profile="transient", fault_seed=2)
        outcome = spec.execute()
        cache.put(spec, outcome)
        hit = cache.get(spec)
        assert hit.kind == "chaos"
        assert hit.to_json() == outcome.to_json()

    def test_distinct_specs_do_not_collide(self, tmp_path):
        cache = ResultCache(tmp_path)
        a, b = _spec(threshold=0), _spec(threshold=8)
        cache.put(a, a.execute())
        assert cache.get(b) is None

    def test_persists_across_instances(self, tmp_path):
        spec = _spec()
        ResultCache(tmp_path).put(spec, spec.execute())
        assert ResultCache(tmp_path).get(spec) is not None


class TestInvalidation:
    def test_invalidate_removes_one_entry(self, tmp_path):
        cache = ResultCache(tmp_path)
        a, b = _spec(threshold=0), _spec(threshold=8)
        cache.put(a, a.execute())
        cache.put(b, b.execute())
        assert len(cache) == 2
        cache.invalidate(a)
        assert cache.get(a) is None
        assert cache.get(b) is not None
        assert len(cache) == 1

    def test_clear_empties_the_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = _spec()
        cache.put(spec, spec.execute())
        cache.clear()
        assert len(cache) == 0
        assert cache.get(spec) is None

    def test_schema_mismatch_is_a_miss_and_dropped(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = _spec()
        cache.put(spec, spec.execute())
        path = cache.path_for(spec)
        entry = json.loads(path.read_text())
        entry["schema"] = "repro-exp-cache/v0"
        path.write_text(json.dumps(entry))
        assert cache.get(spec) is None
        assert not path.exists(), "stale-schema entries must be dropped"

    def test_corrupt_entries_are_dropped_not_fatal(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = _spec()
        cache.put(spec, spec.execute())
        cache.path_for(spec).write_text("{not json")
        assert cache.get(spec) is None
        assert cache.get(spec) is None  # still just a miss

    def test_entry_records_its_spec_for_audit(self, tmp_path):
        """Entries are self-describing: fingerprint collisions aside,
        a cache file names the exact spec key that produced it."""
        cache = ResultCache(tmp_path)
        spec = _spec()
        cache.put(spec, spec.execute())
        entry = json.loads(cache.path_for(spec).read_text())
        assert entry["schema"] == CACHE_SCHEMA
        assert entry["spec"] == spec.key()
