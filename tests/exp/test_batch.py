"""run_batch + ParallelRunner: dedup, parity, resumability, telemetry."""

import pytest

from repro.errors import SimulationError
from repro.exp.batch import (
    missing_fingerprints,
    require_cache_ratio,
    resume_batch,
    run_batch,
)
from repro.exp.cache import ResultCache
from repro.exp.grid import flatten, table3_grid, threshold_grid
from repro.exp.journal import BatchJournal, journal_path_for
from repro.exp.runner import ParallelRunner, spec_weight
from repro.exp.spec import RunSpec
from repro.exp.supervise import SupervisorPolicy
from repro.faults.harness import make_harness_plan
from repro.obs.events import EventBus
from repro.obs.metrics import MetricsRegistry

#: A small two-application grid (6 unique specs, quick instances).
GRID_APPS = ("ParMult", "Gfetch")


def small_grid():
    return flatten(
        table3_grid(apps=GRID_APPS, n_processors=2, quick=True)
    )


class TestRunner:
    def test_serial_and_parallel_results_are_identical(self):
        """The headline fidelity property: fanning a grid across worker
        processes must not change a single byte of any outcome."""
        specs = small_grid()
        serial = ParallelRunner(jobs=1).run(specs)
        parallel = ParallelRunner(jobs=2).run(specs)
        assert len(serial) == len(parallel) == len(specs)
        for left, right in zip(serial, parallel):
            assert left.to_json() == right.to_json()

    def test_duplicates_execute_once(self):
        spec = RunSpec(workload="ParMult", quick=True, n_processors=2)
        seen = []
        outcomes = ParallelRunner(jobs=1).run(
            [spec, spec, spec], on_result=lambda s, o: seen.append(s)
        )
        assert len(outcomes) == 3
        assert len(seen) == 1
        assert outcomes[0].to_json() == outcomes[2].to_json()

    def test_invalid_jobs_rejected(self):
        with pytest.raises(SimulationError):
            ParallelRunner(jobs=0)

    def test_worker_failures_carry_spec_context(self):
        bad = RunSpec(workload="nope", quick=True)
        with pytest.raises(Exception) as excinfo:
            ParallelRunner(jobs=2).run([bad])
        assert "nope" in str(excinfo.value)

    def test_spec_weight_orders_heavy_workloads_first(self):
        heavy = RunSpec(workload="Primes1")
        light = RunSpec(workload="ParMult")
        assert spec_weight(heavy) > spec_weight(light)
        chaotic = RunSpec(workload="ParMult", fault_profile="transient")
        assert spec_weight(chaotic) > spec_weight(light)


class TestBatch:
    def test_rows_align_with_submitted_order(self):
        specs = small_grid()
        batch = run_batch(specs)
        assert [row.spec for row in batch.rows] == specs
        assert batch.unique == len(specs)
        assert batch.executed == len(specs)
        assert batch.cache_hits == 0

    def test_cold_then_warm_cache(self, tmp_path):
        specs = small_grid()
        cache = ResultCache(tmp_path)
        cold = run_batch(specs, cache=cache)
        warm = run_batch(specs, cache=cache)
        assert cold.executed == len(specs) and cold.cache_hits == 0
        assert warm.executed == 0 and warm.cache_hits == len(specs)
        assert warm.cache_ratio == 1.0
        for a, b in zip(cold.rows, warm.rows):
            assert a.outcome.to_json() == b.outcome.to_json()
            assert b.cached

    def test_interrupted_sweep_resumes_from_cache(self, tmp_path):
        """The resumability contract: whatever completed before an
        interruption is never simulated again."""
        specs = small_grid()
        cache = ResultCache(tmp_path)
        run_batch(specs[:2], cache=cache)  # the "interrupted" prefix
        resumed = run_batch(specs, cache=cache)
        assert resumed.cache_hits == 2
        assert resumed.executed == len(specs) - 2

    def test_threshold_sweep_shares_tlocal_baseline(self):
        sweeps = threshold_grid(
            ["ParMult"], [0, 4, 8], n_processors=2, quick=True
        )
        specs = flatten(sweeps)
        batch = run_batch(specs)
        # 3 Tnuma runs + exactly one Tlocal baseline.
        assert batch.unique == 4

    def test_metrics_and_events(self, tmp_path):
        specs = small_grid()

        class Probe:
            def __init__(self):
                self.finished = []
                self.ended = []

            def on_batch_spec_finished(self, done, total, fp, label, cached):
                self.finished.append((done, total, cached))

            def on_batch_end(self, unique, executed, cache_hits, wall_s):
                self.ended.append((unique, executed, cache_hits))

        registry = MetricsRegistry()
        bus = EventBus()
        probe = bus.subscribe(Probe())
        run_batch(
            specs, cache=ResultCache(tmp_path), registry=registry, bus=bus
        )
        assert [done for done, _, _ in probe.finished] == list(
            range(1, len(specs) + 1)
        )
        assert probe.ended == [(len(specs), len(specs), 0)]
        metrics = registry.as_dict()
        assert metrics["batch_executed"] == len(specs)
        assert metrics["batch_cache_hits"] == 0
        assert metrics["batch_jobs"] == 1.0

    def test_progress_lines_mention_cache_state(self, tmp_path):
        spec = RunSpec(workload="ParMult", quick=True, n_processors=2)
        cache = ResultCache(tmp_path)
        lines = []
        run_batch([spec], cache=cache, progress=lines.append)
        run_batch([spec], cache=cache, progress=lines.append)
        assert "ran" in lines[0] and "cached" in lines[1]

    def test_parallel_batch_matches_serial(self, tmp_path):
        specs = small_grid()
        serial = run_batch(specs)
        parallel = run_batch(specs, jobs=2)
        for a, b in zip(serial.rows, parallel.rows):
            assert a.outcome.to_json() == b.outcome.to_json()


class TestSupervisedBatch:
    """The fault-tolerance surface: quarantine, journal, chaos, resume."""

    def test_legacy_default_still_raises_on_failure(self):
        bad = RunSpec(workload="nope", quick=True)
        with pytest.raises(Exception) as excinfo:
            run_batch([bad])
        assert "nope" in str(excinfo.value)

    def test_resilient_policy_quarantines_instead_of_raising(self):
        good = RunSpec(workload="ParMult", quick=True, n_processors=2)
        bad = RunSpec(workload="nope", quick=True)
        policy = SupervisorPolicy(max_attempts=2, backoff_base_s=0.0)
        batch = run_batch([bad, good], policy=policy)
        assert batch.quarantined.keys() == {bad.fingerprint()}
        assert batch.lost == []
        rows = {row.spec.fingerprint(): row for row in batch.rows}
        assert rows[bad.fingerprint()].quarantined
        assert rows[bad.fingerprint()].error is not None
        assert not rows[good.fingerprint()].quarantined
        assert batch.executed == 1

    def test_quarantine_counters_publish(self):
        bad = RunSpec(workload="nope", quick=True)
        registry = MetricsRegistry()
        policy = SupervisorPolicy(max_attempts=3, backoff_base_s=0.0)
        run_batch([bad], policy=policy, registry=registry)
        metrics = registry.as_dict()
        assert metrics["batch_retries"] == 2
        assert metrics["batch_quarantined"] == 1
        assert metrics["batch_pool_recycles"] == 0

    def test_results_document_excludes_host_time(self, tmp_path):
        """wall_s and cache provenance legitimately differ between an
        uninterrupted run and a resumed one — the identity contract
        lives in the results document, which must omit them."""
        specs = small_grid()
        cache = ResultCache(tmp_path)
        cold = run_batch(specs, cache=cache)
        warm = run_batch(specs, cache=cache)
        assert cold.wall_s != warm.wall_s or cold.cache_hits != \
            warm.cache_hits
        assert cold.results_json() == warm.results_json()
        assert cold.results_sha256 == warm.results_sha256
        assert "wall_s" not in cold.results_json()

    def test_journal_records_the_whole_batch(self, tmp_path):
        specs = small_grid()
        cache = ResultCache(tmp_path / "cache")
        journal = BatchJournal(journal_path_for(cache.root))
        batch = run_batch(
            specs, cache=cache, journal=journal, policy=SupervisorPolicy()
        )
        segment = BatchJournal.replay(journal.path).last
        assert segment.ended
        assert segment.results_sha256 == batch.results_sha256
        assert set(segment.finished) == {s.fingerprint() for s in specs}
        assert segment.spec_keys[specs[0].fingerprint()] == specs[0].key()

    def test_keyboard_interrupt_aborts_cleanly(self, tmp_path, monkeypatch):
        """^C mid-batch: the journal ends with an aborted record, the
        cache holds no truncated entry, and a resume completes."""
        specs = small_grid()
        cache = ResultCache(tmp_path / "cache")
        journal_path = journal_path_for(cache.root)

        calls = {"n": 0}
        original = RunSpec.execute

        def interrupting(self):
            calls["n"] += 1
            if calls["n"] == 2:
                raise KeyboardInterrupt()
            return original(self)

        monkeypatch.setattr(RunSpec, "execute", interrupting)
        with pytest.raises(KeyboardInterrupt):
            run_batch(
                specs, cache=cache, policy=SupervisorPolicy(),
                journal=BatchJournal(journal_path),
            )
        monkeypatch.setattr(RunSpec, "execute", original)

        segment = BatchJournal.replay(journal_path).last
        assert segment.aborted and not segment.ended
        # No truncated entries: every file in the cache scans clean.
        scan = cache.scan()
        assert scan.skipped == []
        assert len(scan.entries) == 1  # the spec that finished first

        resumed = resume_batch(journal_path, cache=cache)
        assert resumed.lost == []
        assert not resumed.quarantined
        assert resumed.cache_hits >= 1
        reference = run_batch(specs, cache=ResultCache(tmp_path / "ref"))
        assert resumed.results_json() == reference.results_json()

    def test_resume_after_hard_kill_is_byte_identical(self, tmp_path):
        """Simulated kill -9: the journal just stops (no marker), and a
        resume serves finished work from the cache and re-runs the rest,
        producing a byte-identical results document."""
        specs = small_grid()
        cache = ResultCache(tmp_path / "cache")
        journal_path = journal_path_for(cache.root)
        # Run the first half "before the crash" under the same journal
        # identity as the full batch by journaling the full spec list.
        journal = BatchJournal(journal_path)
        order = [s.fingerprint() for s in specs]
        journal.begin(
            "crashed", order, {s.fingerprint(): s.key() for s in specs},
            jobs=1,
        )
        prefix = run_batch(specs[:2], cache=cache)
        for spec in specs[:2]:
            journal.spec_event("finished", spec.fingerprint(), cached=False)
        # ... crash here: no aborted record, no batch_end.

        resumed = resume_batch(journal_path, cache=cache)
        assert resumed.cache_hits == 2
        assert resumed.executed == len(specs) - 2
        assert resumed.resumed
        reference = run_batch(specs, cache=ResultCache(tmp_path / "ref"))
        assert resumed.results_json() == reference.results_json()
        assert prefix.rows[0].outcome.to_json() == \
            reference.rows[0].outcome.to_json()

    def test_broken_pool_leaves_cache_clean_and_resume_completes(
        self, tmp_path
    ):
        """A SIGKILLed worker (BrokenProcessPool) mid-batch: the cache
        scans clean (workers never write it), the journal records the
        recycle, and a follow-up resume completes the batch."""
        specs = small_grid()
        plan = None
        for seed in range(50):
            candidate = make_harness_plan("worker-kill", seed)
            if any(
                candidate.would_disturb(s.fingerprint(), 1) for s in specs
            ):
                plan = make_harness_plan("worker-kill", seed)
                break
        assert plan is not None
        cache = ResultCache(tmp_path / "cache")
        journal_path = journal_path_for(cache.root)
        policy = SupervisorPolicy(
            max_attempts=4, auto_serial=False, chaos=plan,
            backoff_base_s=0.01, backoff_cap_s=0.05,
        )
        batch = run_batch(
            specs, jobs=2, cache=cache, policy=policy,
            journal=BatchJournal(journal_path),
        )
        assert batch.lost == [] and not batch.quarantined
        assert batch.supervision.pool_recycles >= 1
        scan = cache.scan()
        assert scan.skipped == [], "no truncated or temp entries"
        assert len(scan.entries) == len(specs)

        resumed = resume_batch(journal_path, cache=cache)
        assert resumed.cache_hits == len(specs)
        assert resumed.executed == 0
        assert resumed.results_json() == batch.results_json()

    def test_cache_corruption_chaos_reads_as_miss_on_resume(self, tmp_path):
        specs = small_grid()
        plan = None
        for seed in range(50):
            candidate = make_harness_plan("cache-corrupt", seed)
            if any(candidate.corrupts_entry(s.fingerprint()) for s in specs):
                plan = make_harness_plan("cache-corrupt", seed)
                break
        assert plan is not None
        cache = ResultCache(tmp_path / "cache")
        policy = SupervisorPolicy(chaos=plan, backoff_base_s=0.0)
        first = run_batch(specs, cache=cache, policy=policy)
        assert first.lost == [] and not first.quarantined
        assert first.chaos_fired["corrupt"] >= 1
        # The corrupted entries are misses, so a re-run re-simulates
        # exactly those — and lands the same results document.
        second = run_batch(specs, cache=cache)
        assert second.executed == first.chaos_fired["corrupt"]
        assert second.results_json() == first.results_json()

    def test_require_cache_ratio_reports_missing_fingerprints(
        self, tmp_path
    ):
        specs = small_grid()
        cache = ResultCache(tmp_path)
        run_batch(specs[:1], cache=cache)
        batch = run_batch(specs, cache=cache)
        require_cache_ratio(batch, 0.1)  # satisfied: no raise
        with pytest.raises(SimulationError) as excinfo:
            require_cache_ratio(batch, 1.0)
        message = str(excinfo.value)
        missing = missing_fingerprints(batch)
        assert missing == sorted(
            s.fingerprint() for s in specs[1:]
        )
        assert f"{batch.cache_ratio:.4f}" in message
        for fp in missing:
            assert fp[:12] in message

    def test_lost_specs_is_empty_by_contract(self):
        batch = run_batch(small_grid(), policy=SupervisorPolicy())
        assert batch.lost == []
        assert batch.as_dict()["lost_specs"] == 0
