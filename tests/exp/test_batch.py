"""run_batch + ParallelRunner: dedup, parity, resumability, telemetry."""

import pytest

from repro.errors import SimulationError
from repro.exp.batch import run_batch
from repro.exp.cache import ResultCache
from repro.exp.grid import flatten, table3_grid, threshold_grid
from repro.exp.runner import ParallelRunner, spec_weight
from repro.exp.spec import RunSpec
from repro.obs.events import EventBus
from repro.obs.metrics import MetricsRegistry

#: A small two-application grid (6 unique specs, quick instances).
GRID_APPS = ("ParMult", "Gfetch")


def small_grid():
    return flatten(
        table3_grid(apps=GRID_APPS, n_processors=2, quick=True)
    )


class TestRunner:
    def test_serial_and_parallel_results_are_identical(self):
        """The headline fidelity property: fanning a grid across worker
        processes must not change a single byte of any outcome."""
        specs = small_grid()
        serial = ParallelRunner(jobs=1).run(specs)
        parallel = ParallelRunner(jobs=2).run(specs)
        assert len(serial) == len(parallel) == len(specs)
        for left, right in zip(serial, parallel):
            assert left.to_json() == right.to_json()

    def test_duplicates_execute_once(self):
        spec = RunSpec(workload="ParMult", quick=True, n_processors=2)
        seen = []
        outcomes = ParallelRunner(jobs=1).run(
            [spec, spec, spec], on_result=lambda s, o: seen.append(s)
        )
        assert len(outcomes) == 3
        assert len(seen) == 1
        assert outcomes[0].to_json() == outcomes[2].to_json()

    def test_invalid_jobs_rejected(self):
        with pytest.raises(SimulationError):
            ParallelRunner(jobs=0)

    def test_worker_failures_carry_spec_context(self):
        bad = RunSpec(workload="nope", quick=True)
        with pytest.raises(Exception) as excinfo:
            ParallelRunner(jobs=2).run([bad])
        assert "nope" in str(excinfo.value)

    def test_spec_weight_orders_heavy_workloads_first(self):
        heavy = RunSpec(workload="Primes1")
        light = RunSpec(workload="ParMult")
        assert spec_weight(heavy) > spec_weight(light)
        chaotic = RunSpec(workload="ParMult", fault_profile="transient")
        assert spec_weight(chaotic) > spec_weight(light)


class TestBatch:
    def test_rows_align_with_submitted_order(self):
        specs = small_grid()
        batch = run_batch(specs)
        assert [row.spec for row in batch.rows] == specs
        assert batch.unique == len(specs)
        assert batch.executed == len(specs)
        assert batch.cache_hits == 0

    def test_cold_then_warm_cache(self, tmp_path):
        specs = small_grid()
        cache = ResultCache(tmp_path)
        cold = run_batch(specs, cache=cache)
        warm = run_batch(specs, cache=cache)
        assert cold.executed == len(specs) and cold.cache_hits == 0
        assert warm.executed == 0 and warm.cache_hits == len(specs)
        assert warm.cache_ratio == 1.0
        for a, b in zip(cold.rows, warm.rows):
            assert a.outcome.to_json() == b.outcome.to_json()
            assert b.cached

    def test_interrupted_sweep_resumes_from_cache(self, tmp_path):
        """The resumability contract: whatever completed before an
        interruption is never simulated again."""
        specs = small_grid()
        cache = ResultCache(tmp_path)
        run_batch(specs[:2], cache=cache)  # the "interrupted" prefix
        resumed = run_batch(specs, cache=cache)
        assert resumed.cache_hits == 2
        assert resumed.executed == len(specs) - 2

    def test_threshold_sweep_shares_tlocal_baseline(self):
        sweeps = threshold_grid(
            ["ParMult"], [0, 4, 8], n_processors=2, quick=True
        )
        specs = flatten(sweeps)
        batch = run_batch(specs)
        # 3 Tnuma runs + exactly one Tlocal baseline.
        assert batch.unique == 4

    def test_metrics_and_events(self, tmp_path):
        specs = small_grid()

        class Probe:
            def __init__(self):
                self.finished = []
                self.ended = []

            def on_batch_spec_finished(self, done, total, fp, label, cached):
                self.finished.append((done, total, cached))

            def on_batch_end(self, unique, executed, cache_hits, wall_s):
                self.ended.append((unique, executed, cache_hits))

        registry = MetricsRegistry()
        bus = EventBus()
        probe = bus.subscribe(Probe())
        run_batch(
            specs, cache=ResultCache(tmp_path), registry=registry, bus=bus
        )
        assert [done for done, _, _ in probe.finished] == list(
            range(1, len(specs) + 1)
        )
        assert probe.ended == [(len(specs), len(specs), 0)]
        metrics = registry.as_dict()
        assert metrics["batch_executed"] == len(specs)
        assert metrics["batch_cache_hits"] == 0
        assert metrics["batch_jobs"] == 1.0

    def test_progress_lines_mention_cache_state(self, tmp_path):
        spec = RunSpec(workload="ParMult", quick=True, n_processors=2)
        cache = ResultCache(tmp_path)
        lines = []
        run_batch([spec], cache=cache, progress=lines.append)
        run_batch([spec], cache=cache, progress=lines.append)
        assert "ran" in lines[0] and "cached" in lines[1]

    def test_parallel_batch_matches_serial(self, tmp_path):
        specs = small_grid()
        serial = run_batch(specs)
        parallel = run_batch(specs, jobs=2)
        for a, b in zip(serial.rows, parallel.rows):
            assert a.outcome.to_json() == b.outcome.to_json()
