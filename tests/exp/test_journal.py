"""The batch journal WAL: append, replay, torn tails, resume state."""

import json

from repro.exp.journal import (
    JOURNAL_SCHEMA,
    BatchJournal,
    journal_path_for,
)


def write_segment(journal, batch="b1", fps=("f1", "f2"), end=True):
    journal.begin(
        batch,
        list(fps),
        {fp: {"workload": "ParMult", "seed": i} for i, fp in enumerate(fps)},
        jobs=2,
    )
    for fp in fps:
        journal.spec_event("submitted", fp, attempt=1)
        journal.spec_event("finished", fp, cached=False)
    if end:
        journal.end({"unique": len(fps), "results_sha256": "abc123"})


class TestAppendAndReplay:
    def test_round_trip(self, tmp_path):
        journal = BatchJournal(tmp_path / "batch.journal.jsonl")
        write_segment(journal)
        replay = BatchJournal.replay(journal.path)
        assert replay.corrupt_lines == 0
        segment = replay.last
        assert segment.batch == "b1"
        assert segment.order == ["f1", "f2"]
        assert segment.finished == ["f1", "f2"]
        assert segment.incomplete == []
        assert segment.ended
        assert not segment.aborted
        assert segment.results_sha256 == "abc123"
        assert segment.spec_keys["f1"]["workload"] == "ParMult"

    def test_missing_file_replays_empty(self, tmp_path):
        replay = BatchJournal.replay(tmp_path / "never-written.jsonl")
        assert replay.batches == []
        assert replay.last is None

    def test_each_append_is_flushed_to_disk(self, tmp_path):
        """The crash-safety contract: a record is durable the moment
        ``append`` returns, not when some handle eventually closes."""
        journal = BatchJournal(tmp_path / "j.jsonl")
        journal.append({"t": "probe"})
        raw = journal.path.read_text()
        assert json.loads(raw.splitlines()[0]) == {"t": "probe"}

    def test_multiple_segments_replay_in_order(self, tmp_path):
        journal = BatchJournal(tmp_path / "j.jsonl")
        write_segment(journal, batch="first", fps=("a",))
        write_segment(journal, batch="second", fps=("b", "c"))
        replay = BatchJournal.replay(journal.path)
        assert [segment.batch for segment in replay.batches] == [
            "first", "second",
        ]
        assert replay.last.batch == "second"


class TestCrashShapes:
    def test_torn_tail_is_counted_not_fatal(self, tmp_path):
        """A kill -9 mid-append leaves half a JSON line; replay must
        skip it and keep every record before it."""
        journal = BatchJournal(tmp_path / "j.jsonl")
        write_segment(journal, end=False)
        with open(journal.path, "a", encoding="utf-8") as handle:
            handle.write('{"t": "finished", "fp": "f3", "cach')
        replay = BatchJournal.replay(journal.path)
        assert replay.corrupt_lines == 1
        assert replay.last.finished == ["f1", "f2"]
        assert not replay.last.ended

    def test_crash_leaves_no_terminal_marker(self, tmp_path):
        journal = BatchJournal(tmp_path / "j.jsonl")
        journal.begin("b1", ["f1"], {"f1": {"workload": "X"}}, jobs=1)
        journal.spec_event("submitted", "f1", attempt=1)
        segment = BatchJournal.replay(journal.path).last
        assert not segment.ended
        assert not segment.aborted
        assert segment.incomplete == ["f1"]

    def test_clean_abort_is_distinguishable_from_a_crash(self, tmp_path):
        journal = BatchJournal(tmp_path / "j.jsonl")
        journal.begin("b1", ["f1"], {"f1": {"workload": "X"}}, jobs=1)
        journal.aborted("KeyboardInterrupt")
        segment = BatchJournal.replay(journal.path).last
        assert segment.aborted
        assert not segment.ended

    def test_failed_records_accumulate_attempt_counts(self, tmp_path):
        journal = BatchJournal(tmp_path / "j.jsonl")
        journal.begin("b1", ["f1"], {"f1": {"workload": "X"}}, jobs=1)
        journal.spec_event("failed", "f1", attempt=1, error="boom")
        journal.spec_event("failed", "f1", attempt=2, error="boom")
        segment = BatchJournal.replay(journal.path).last
        assert segment.failures == {"f1": 2}
        assert segment.states["f1"] == "failed"

    def test_quarantine_is_terminal(self, tmp_path):
        journal = BatchJournal(tmp_path / "j.jsonl")
        journal.begin("b1", ["f1"], {"f1": {"workload": "X"}}, jobs=1)
        journal.spec_event("failed", "f1", attempt=1, error="boom")
        journal.spec_event("quarantined", "f1", attempts=1, error="boom")
        segment = BatchJournal.replay(journal.path).last
        assert segment.incomplete == []
        assert segment.states["f1"] == "quarantined"

    def test_foreign_schema_segment_is_skipped(self, tmp_path):
        journal = BatchJournal(tmp_path / "j.jsonl")
        journal.append(
            {"t": "batch_begin", "schema": "someone-else/v9", "batch": "x",
             "order": ["f9"], "specs": {}}
        )
        journal.spec_event("finished", "f9")
        write_segment(journal, batch="ours", fps=("f1",))
        replay = BatchJournal.replay(journal.path)
        assert [segment.batch for segment in replay.batches] == ["ours"]
        assert replay.corrupt_lines == 1

    def test_unknown_record_kinds_are_ignored(self, tmp_path):
        """Forward compatibility: informational records (retry,
        pool_recycle, and whatever comes next) must not break replay."""
        journal = BatchJournal(tmp_path / "j.jsonl")
        journal.begin("b1", ["f1"], {"f1": {"workload": "X"}}, jobs=1)
        journal.append({"t": "pool_recycle", "reason": "hung worker"})
        journal.append({"t": "retry", "fp": "f1", "attempt": 1})
        journal.spec_event("finished", "f1", cached=False)
        segment = BatchJournal.replay(journal.path).last
        assert segment.finished == ["f1"]

    def test_schema_constant_is_recorded_on_begin(self, tmp_path):
        journal = BatchJournal(tmp_path / "j.jsonl")
        write_segment(journal)
        first = json.loads(journal.path.read_text().splitlines()[0])
        assert first["schema"] == JOURNAL_SCHEMA


class TestJournalPlacement:
    def test_journal_lives_beside_the_cache_root_not_inside(self, tmp_path):
        """Inside the root, the scanner would classify it foreign and
        ``cache gc --foreign`` could eat the recovery log."""
        root = tmp_path / ".repro-cache"
        path = journal_path_for(root)
        assert path.parent == root.parent
        assert path.name == ".repro-cache.journal.jsonl"
