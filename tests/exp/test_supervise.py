"""The supervision layer: retry, backoff, quarantine, recycle, fallback."""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.exp.journal import BatchJournal
from repro.exp.spec import RunSpec
from repro.exp.supervise import (
    SupervisedRunner,
    SupervisorPolicy,
    execute_supervised,
)
from repro.faults.harness import (
    HarnessChaosPlan,
    HarnessChaosProfile,
    make_harness_plan,
)
from repro.obs.events import EventBus


def good_spec(n_processors=2):
    return RunSpec(workload="ParMult", quick=True, n_processors=n_processors)


def bad_spec():
    return RunSpec(workload="nope", quick=True)


def pair(spec):
    return (spec.fingerprint(), spec)


class TestPolicy:
    def test_defaults_are_resilient(self):
        policy = SupervisorPolicy()
        assert policy.max_attempts == 3
        assert not policy.raise_on_failure
        assert policy.auto_serial

    def test_strict_reproduces_the_legacy_contract(self):
        policy = SupervisorPolicy.strict()
        assert policy.max_attempts == 1
        assert policy.raise_on_failure
        assert policy.backoff_s("fp", 1) == 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SupervisorPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            SupervisorPolicy(timeout_s=0.0)
        with pytest.raises(ConfigurationError):
            SupervisorPolicy(backoff_base_s=-1.0)

    def test_backoff_is_capped_exponential_with_deterministic_jitter(self):
        policy = SupervisorPolicy(
            backoff_base_s=0.1, backoff_cap_s=0.4, backoff_jitter=0.25,
            seed=9,
        )
        b1 = policy.backoff_s("fp", 1)
        b2 = policy.backoff_s("fp", 2)
        b9 = policy.backoff_s("fp", 9)
        assert 0.1 <= b1 <= 0.1 * 1.25
        assert 0.2 <= b2 <= 0.2 * 1.25
        assert 0.4 <= b9 <= 0.4 * 1.25  # capped
        # pure function of (seed, fp, attempt)
        assert policy.backoff_s("fp", 1) == b1
        assert SupervisorPolicy(
            backoff_base_s=0.1, backoff_cap_s=0.4, backoff_jitter=0.25,
            seed=9,
        ).backoff_s("fp", 1) == b1
        # different fp or seed draws different jitter
        assert policy.backoff_s("other", 1) != b1


class TestSerialSupervision:
    def test_happy_path_matches_direct_execution(self):
        spec = good_spec()
        runner = SupervisedRunner(jobs=1, policy=SupervisorPolicy())
        outcomes, quarantined, stats = runner.run([pair(spec)])
        assert not quarantined
        assert stats.executed == 1
        direct = spec.execute()
        assert outcomes[spec.fingerprint()].to_json() == direct.to_json()

    def test_poison_spec_is_quarantined_not_fatal(self):
        good, bad = good_spec(), bad_spec()
        policy = SupervisorPolicy(max_attempts=2, backoff_base_s=0.0)
        runner = SupervisedRunner(jobs=1, policy=policy)
        outcomes, quarantined, stats = runner.run([pair(bad), pair(good)])
        assert good.fingerprint() in outcomes
        assert bad.fingerprint() in quarantined
        assert "nope" in quarantined[bad.fingerprint()]
        assert stats.quarantined == 1
        assert stats.retries == 1  # attempt 1 failed, retried, gave up

    def test_strict_policy_raises_the_original_error(self):
        runner = SupervisedRunner(jobs=1, policy=SupervisorPolicy.strict())
        with pytest.raises(ConfigurationError) as excinfo:
            runner.run([pair(bad_spec())])
        assert "nope" in str(excinfo.value)

    def test_chaos_kill_in_serial_mode_retries_and_converges(self):
        spec = good_spec()
        profile = HarnessChaosProfile(name="always-kill", kill_rate=1.0)
        plan = HarnessChaosPlan(profile, seed=0)
        policy = SupervisorPolicy(
            max_attempts=3, backoff_base_s=0.0, chaos=plan
        )
        runner = SupervisedRunner(jobs=1, policy=policy)
        outcomes, quarantined, stats = runner.run([pair(spec)])
        assert not quarantined
        assert spec.fingerprint() in outcomes
        assert stats.retries == 1  # killed once (first attempt only)
        assert plan.fired["kill"] == 1

    def test_prior_failures_carry_across_resume(self):
        """A spec that already burned its budget in a crashed run stays
        quarantined — a poison spec must not sink every resume too."""
        bad = bad_spec()
        policy = SupervisorPolicy(max_attempts=2, backoff_base_s=0.0)
        runner = SupervisedRunner(
            jobs=1, policy=policy,
            prior_failures={bad.fingerprint(): 2},
        )
        outcomes, quarantined, stats = runner.run([pair(bad)])
        assert quarantined == {
            bad.fingerprint(): "quarantined in a previous run"
        }
        assert stats.retries == 0  # never re-attempted

    def test_retry_and_quarantine_events_reach_the_bus(self):
        events = []

        class Observer:
            def on_spec_retry(self, fp, label, attempt, backoff_s, reason):
                events.append(("retry", attempt, reason))

            def on_spec_quarantined(self, fp, label, attempts, reason):
                events.append(("quarantined", attempts, reason))

        bus = EventBus([Observer()])
        policy = SupervisorPolicy(max_attempts=2, backoff_base_s=0.0)
        runner = SupervisedRunner(jobs=1, policy=policy, bus=bus)
        runner.run([pair(bad_spec())])
        assert events[0][0] == "retry" and events[0][1] == 1
        assert events[1][0] == "quarantined" and events[1][1] == 2

    def test_failures_and_quarantine_reach_the_journal(self, tmp_path):
        journal = BatchJournal(tmp_path / "j.jsonl")
        journal.begin("b", [], {}, jobs=1)
        policy = SupervisorPolicy(max_attempts=2, backoff_base_s=0.0)
        runner = SupervisedRunner(jobs=1, policy=policy, journal=journal)
        bad = bad_spec()
        runner.run([pair(bad)])
        segment = BatchJournal.replay(journal.path).last
        assert segment.failures == {bad.fingerprint(): 2}
        assert segment.states[bad.fingerprint()] == "quarantined"


class TestPoolSupervision:
    """Pool paths need auto_serial=False on a starved CI host — the
    clamp would otherwise (correctly) route everything serial."""

    def test_pool_results_match_serial(self):
        specs = [good_spec(p) for p in (1, 2, 3)]
        serial = SupervisedRunner(jobs=1, policy=SupervisorPolicy())
        out_s, _, _ = serial.run([pair(s) for s in specs])
        pool = SupervisedRunner(
            jobs=2, policy=SupervisorPolicy(auto_serial=False)
        )
        out_p, quarantined, _ = pool.run([pair(s) for s in specs])
        assert not quarantined
        for spec in specs:
            fp = spec.fingerprint()
            assert out_s[fp].to_json() == out_p[fp].to_json()

    def test_worker_kill_breaks_pool_and_recovers(self):
        specs = [good_spec(p) for p in (1, 2, 3, 4)]
        plan = None
        for seed in range(50):
            candidate = make_harness_plan("worker-kill", seed)
            if sum(
                candidate.would_disturb(s.fingerprint(), 1) for s in specs
            ) >= 1:
                plan = candidate
                break
        assert plan is not None
        policy = SupervisorPolicy(
            max_attempts=4, auto_serial=False, chaos=plan,
            backoff_base_s=0.01, backoff_cap_s=0.05,
        )
        runner = SupervisedRunner(jobs=2, policy=policy)
        outcomes, quarantined, stats = runner.run([pair(s) for s in specs])
        assert not quarantined
        assert len(outcomes) == len(specs)
        assert stats.pool_recycles >= 1
        assert stats.retries >= 1

    def test_hung_worker_times_out_and_recovers(self):
        specs = [good_spec(p) for p in (1, 2, 3)]
        profile = HarnessChaosProfile(
            name="hang-one", hang_rate=0.5, hang_s=5.0
        )
        plan = None
        for seed in range(50):
            candidate = HarnessChaosPlan(profile, seed)
            if sum(
                candidate.would_disturb(s.fingerprint(), 1) for s in specs
            ) >= 1:
                plan = candidate
                break
        assert plan is not None
        policy = SupervisorPolicy(
            max_attempts=3, auto_serial=False, chaos=plan, timeout_s=1.0,
            backoff_base_s=0.01, backoff_cap_s=0.05,
        )
        runner = SupervisedRunner(jobs=2, policy=policy)
        outcomes, quarantined, stats = runner.run([pair(s) for s in specs])
        assert not quarantined
        assert len(outcomes) == len(specs)
        assert stats.timeouts >= 1
        assert stats.pool_recycles >= 1

    def test_dying_pool_falls_back_to_serial(self):
        """With every first attempt killed and a recycle budget of one,
        the supervisor must abandon multiprocessing and still finish
        every spec in-process."""
        specs = [good_spec(p) for p in (1, 2, 3)]
        profile = HarnessChaosProfile(name="always-kill", kill_rate=1.0)
        plan = HarnessChaosPlan(profile, seed=0)
        policy = SupervisorPolicy(
            max_attempts=4, auto_serial=True, chaos=plan,
            max_pool_recycles=1, backoff_base_s=0.0,
        )
        runner = SupervisedRunner(jobs=2, policy=policy)
        runner.jobs_effective = 2  # force the pool path despite 1 core
        runner._window = 4
        outcomes, quarantined, stats = runner.run([pair(s) for s in specs])
        assert not quarantined
        assert len(outcomes) == len(specs)
        assert stats.serial_fallbacks == 1
        assert stats.pool_recycles == 1

    def test_jobs_clamp_to_host_cores_under_auto_serial(self):
        import os

        cores = os.cpu_count() or 1
        runner = SupervisedRunner(
            jobs=cores + 8, policy=SupervisorPolicy(auto_serial=True)
        )
        assert runner.jobs_effective == cores
        unclamped = SupervisedRunner(
            jobs=cores + 8, policy=SupervisorPolicy(auto_serial=False)
        )
        assert unclamped.jobs_effective == cores + 8

    def test_strict_pool_failure_carries_spec_context(self):
        runner = SupervisedRunner(
            jobs=2, policy=SupervisorPolicy.strict(auto_serial=False)
        )
        with pytest.raises(SimulationError) as excinfo:
            runner.run([pair(bad_spec())])
        assert "nope" in str(excinfo.value)
        assert "worker failed on spec" in str(excinfo.value)


class TestWorkerEntry:
    def test_execute_supervised_without_action_matches_payload(self):
        spec = good_spec()
        payload = execute_supervised(spec.key(), None)
        assert payload == spec.execute().as_dict()

    def test_invalid_jobs_rejected(self):
        with pytest.raises(SimulationError):
            SupervisedRunner(jobs=0)
