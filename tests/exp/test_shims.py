"""The classic drivers as RunSpec shims: parity and deprecation."""

import warnings

import pytest

from repro.core.policies import AllGlobalPolicy, MoveThresholdPolicy
from repro.exp.grid import placement_specs
from repro.exp.spec import RunSpec
from repro.sim.harness import measure_placement, run_once
from repro.workloads.parmult import ParMult


class TestRunOnceShim:
    def test_matches_declarative_spec_byte_for_byte(self):
        shim = run_once(
            ParMult.small(), MoveThresholdPolicy(threshold=4), n_processors=2
        )
        spec = RunSpec(workload="ParMult", quick=True, n_processors=2)
        assert shim.to_json() == spec.run().to_json()

    def test_keyword_call_is_warning_free(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            run_once(
                ParMult.small(),
                MoveThresholdPolicy(threshold=4),
                n_processors=2,
                check_invariants=False,
            )

    def test_positional_extras_warn_but_work(self):
        with pytest.warns(DeprecationWarning, match="run_once"):
            legacy = run_once(ParMult.small(), MoveThresholdPolicy(threshold=4), 2)
        modern = run_once(
            ParMult.small(), MoveThresholdPolicy(threshold=4), n_processors=2
        )
        assert legacy.to_json() == modern.to_json()

    def test_positional_keyword_conflict_is_an_error(self):
        with pytest.raises(TypeError, match="n_processors"), warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            run_once(
                ParMult.small(), MoveThresholdPolicy(threshold=4), 2, n_processors=2
            )

    def test_unknown_keyword_is_an_error(self):
        with pytest.raises(TypeError, match="surprise"):
            run_once(ParMult.small(), MoveThresholdPolicy(threshold=4), surprise=1)

    def test_non_registry_policy_instances_still_run(self):
        result = run_once(ParMult.small(), AllGlobalPolicy(), n_processors=2)
        assert result.policy == AllGlobalPolicy().name


class TestMeasurePlacementShim:
    def test_runs_the_placement_spec_triple(self):
        m = measure_placement(ParMult.small(), n_processors=2, threshold=4)
        specs = placement_specs(
            "ParMult", n_processors=2, threshold=4, quick=True
        )
        assert m.numa.to_json() == specs.tnuma.run().to_json()
        assert m.all_global.to_json() == specs.tglobal.run().to_json()
        assert m.local.to_json() == specs.tlocal.run().to_json()

    def test_local_run_is_uniprocessor(self):
        m = measure_placement(ParMult.small(), n_processors=3)
        assert m.local.n_processors == 1
        assert m.local.n_threads == 1
        assert m.numa.n_processors == 3

    def test_positional_extras_warn(self):
        with pytest.warns(DeprecationWarning, match="measure_placement"):
            measure_placement(ParMult.small(), 2)
