"""The ``repro-numa batch`` command and the orchestrated CLI paths."""

import json

import pytest

from repro.cli import build_parser, main


class TestParsing:
    def test_batch_defaults(self):
        args = build_parser().parse_args(["batch"])
        assert args.grid == "table3"
        assert args.jobs == 1
        assert args.cache_dir is None  # resolved to .repro-cache at run time
        assert not args.no_cache
        assert args.require_cache_ratio is None

    def test_batch_options(self):
        args = build_parser().parse_args(
            [
                "--jobs", "2",
                "batch",
                "--grid", "chaos",
                "--apps", "parmult",
                "--seeds", "0", "1",
                "--profile", "storm",
                "--no-cache",
                "--require-cache-ratio", "0.9",
            ]
        )
        assert args.jobs == 2
        assert args.grid == "chaos"
        assert args.apps == ["parmult"]
        assert args.seeds == [0, 1]
        assert args.profile == "storm"
        assert args.no_cache
        assert args.require_cache_ratio == pytest.approx(0.9)

    def test_jobs_and_cache_dir_accepted_on_table_commands(self):
        args = build_parser().parse_args(
            ["table3", "--jobs", "2", "--cache-dir", "x"]
        )
        assert args.jobs == 2
        assert args.cache_dir == "x"


def _summary(capsys):
    """The batch summary: the last stdout line, one JSON object."""
    lines = [l for l in capsys.readouterr().out.splitlines() if l.strip()]
    return json.loads(lines[-1])


class TestBatchCommand:
    def test_cold_then_warm_run(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        argv = ["--quick", "batch", "--apps", "ParMult"]
        assert main(argv) == 0
        cold = _summary(capsys)
        assert cold["unique"] == 3 and cold["executed"] == 3
        assert (tmp_path / ".repro-cache").is_dir()

        assert main(argv + ["--require-cache-ratio", "0.9"]) == 0
        warm = _summary(capsys)
        assert warm["executed"] == 0
        assert warm["cache_ratio"] == 1.0

    def test_require_cache_ratio_fails_cold_runs(self, tmp_path, capsys,
                                                 monkeypatch):
        monkeypatch.chdir(tmp_path)
        argv = [
            "--quick", "batch", "--apps", "ParMult",
            "--require-cache-ratio", "0.9",
        ]
        assert main(argv) == 1
        assert "cache ratio" in capsys.readouterr().err

    def test_no_cache_never_writes(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        argv = ["--quick", "batch", "--apps", "ParMult", "--no-cache"]
        assert main(argv) == 0
        assert main(argv) == 0
        assert _summary(capsys)["cache_hits"] == 0
        assert not (tmp_path / ".repro-cache").exists()

    def test_chaos_grid_emits_reports(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        out = tmp_path / "batch.jsonl"
        assert main(
            [
                "--quick", "batch", "--grid", "chaos",
                "--apps", "ParMult", "--seeds", "0", "1",
                "--json", str(out),
            ]
        ) == 0
        assert _summary(capsys)["unique"] == 2
        records = [json.loads(line) for line in out.read_text().splitlines()]
        kinds = {r["t"] for r in records}
        assert {"batch_spec", "batch_summary", "batch_metric"} <= kinds
        chaos_rows = [r for r in records if r["t"] == "batch_spec"]
        assert all(r["kind"] == "chaos" for r in chaos_rows)

    def test_json_sink_carries_batch_counters(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        out = tmp_path / "batch.jsonl"
        assert main(
            ["--quick", "batch", "--apps", "ParMult", "--json", str(out)]
        ) == 0
        records = [json.loads(line) for line in out.read_text().splitlines()]
        metrics = {
            r["name"]: r for r in records if r["t"] == "batch_metric"
        }
        assert metrics["batch_executed"]["value"] == 3


class TestOrchestratedTables:
    def test_table3_uses_cache_dir(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        argv = ["--quick", "table3", "--cache-dir", str(tmp_path / "c")]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert first == second
        assert (tmp_path / "c").is_dir()

    def test_sweep_routes_through_orchestrator(self, tmp_path, capsys,
                                               monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(
            [
                "--quick", "sweep", "--apps", "ParMult",
                "--thresholds", "0", "4",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "threshold sweep" in out
        assert out.count("\n  ") >= 2  # one line per threshold
