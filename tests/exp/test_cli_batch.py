"""The ``repro-numa batch`` command and the orchestrated CLI paths."""

import json

import pytest

from repro.cli import build_parser, main


class TestParsing:
    def test_batch_defaults(self):
        args = build_parser().parse_args(["batch"])
        assert args.grid == "table3"
        assert args.jobs == 1
        assert args.cache_dir is None  # resolved to .repro-cache at run time
        assert not args.no_cache
        assert args.require_cache_ratio is None

    def test_batch_options(self):
        args = build_parser().parse_args(
            [
                "--jobs", "2",
                "batch",
                "--grid", "chaos",
                "--apps", "parmult",
                "--seeds", "0", "1",
                "--profile", "storm",
                "--no-cache",
                "--require-cache-ratio", "0.9",
            ]
        )
        assert args.jobs == 2
        assert args.grid == "chaos"
        assert args.apps == ["parmult"]
        assert args.seeds == [0, 1]
        assert args.profile == "storm"
        assert args.no_cache
        assert args.require_cache_ratio == pytest.approx(0.9)

    def test_jobs_and_cache_dir_accepted_on_table_commands(self):
        args = build_parser().parse_args(
            ["table3", "--jobs", "2", "--cache-dir", "x"]
        )
        assert args.jobs == 2
        assert args.cache_dir == "x"


def _summary(capsys):
    """The batch summary: the last stdout line, one JSON object."""
    lines = [l for l in capsys.readouterr().out.splitlines() if l.strip()]
    return json.loads(lines[-1])


class TestBatchCommand:
    def test_cold_then_warm_run(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        argv = ["--quick", "batch", "--apps", "ParMult"]
        assert main(argv) == 0
        cold = _summary(capsys)
        assert cold["unique"] == 3 and cold["executed"] == 3
        assert (tmp_path / ".repro-cache").is_dir()

        assert main(argv + ["--require-cache-ratio", "0.9"]) == 0
        warm = _summary(capsys)
        assert warm["executed"] == 0
        assert warm["cache_ratio"] == 1.0

    def test_require_cache_ratio_fails_cold_runs(self, tmp_path, capsys,
                                                 monkeypatch):
        monkeypatch.chdir(tmp_path)
        argv = [
            "--quick", "batch", "--apps", "ParMult",
            "--require-cache-ratio", "0.9",
        ]
        assert main(argv) == 1
        assert "cache ratio" in capsys.readouterr().err

    def test_no_cache_never_writes(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        argv = ["--quick", "batch", "--apps", "ParMult", "--no-cache"]
        assert main(argv) == 0
        assert main(argv) == 0
        assert _summary(capsys)["cache_hits"] == 0
        assert not (tmp_path / ".repro-cache").exists()

    def test_chaos_grid_emits_reports(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        out = tmp_path / "batch.jsonl"
        assert main(
            [
                "--quick", "batch", "--grid", "chaos",
                "--apps", "ParMult", "--seeds", "0", "1",
                "--json", str(out),
            ]
        ) == 0
        assert _summary(capsys)["unique"] == 2
        records = [json.loads(line) for line in out.read_text().splitlines()]
        kinds = {r["t"] for r in records}
        assert {"batch_spec", "batch_summary", "batch_metric"} <= kinds
        chaos_rows = [r for r in records if r["t"] == "batch_spec"]
        assert all(r["kind"] == "chaos" for r in chaos_rows)

    def test_json_sink_carries_batch_counters(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        out = tmp_path / "batch.jsonl"
        assert main(
            ["--quick", "batch", "--apps", "ParMult", "--json", str(out)]
        ) == 0
        records = [json.loads(line) for line in out.read_text().splitlines()]
        metrics = {
            r["name"]: r for r in records if r["t"] == "batch_metric"
        }
        assert metrics["batch_executed"]["value"] == 3


class TestResilienceFlags:
    def test_supervision_defaults(self):
        args = build_parser().parse_args(["batch"])
        assert args.max_attempts == 3
        assert args.timeout is None
        assert not args.strict
        assert not args.resume
        assert not args.no_journal
        assert args.harness_chaos is None
        assert args.harness_seed == 0
        assert args.results is None

    def test_require_cache_ratio_failure_lists_missing(self, tmp_path,
                                                       capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        argv = [
            "--quick", "batch", "--apps", "ParMult",
            "--require-cache-ratio", "0.9",
        ]
        assert main(argv) == 1
        err = capsys.readouterr().err
        assert "cache ratio 0.0000" in err
        assert "missing from cache" in err

    def test_journal_written_beside_cache(self, tmp_path, capsys,
                                          monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["--quick", "batch", "--apps", "ParMult"]) == 0
        journal = tmp_path / ".repro-cache.journal.jsonl"
        assert journal.is_file()
        records = [
            json.loads(line) for line in journal.read_text().splitlines()
        ]
        assert records[0]["t"] == "batch_begin"
        assert records[-1]["t"] == "batch_end"

    def test_no_journal_skips_the_wal(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(
            ["--quick", "batch", "--apps", "ParMult", "--no-journal"]
        ) == 0
        assert not (tmp_path / ".repro-cache.journal.jsonl").exists()

    def test_resume_replays_the_last_batch(self, tmp_path, capsys,
                                           monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["--quick", "batch", "--apps", "ParMult"]) == 0
        first = _summary(capsys)
        assert main(["--quick", "batch", "--resume"]) == 0
        resumed = _summary(capsys)
        assert resumed["resumed"] is True
        assert resumed["executed"] == 0
        assert resumed["cache_hits"] == first["unique"]
        assert resumed["results_sha256"] == first["results_sha256"]

    def test_resume_without_cache_is_a_usage_error(self, tmp_path, capsys,
                                                   monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["--quick", "batch", "--resume", "--no-cache"]) == 2

    def test_resume_with_empty_journal_is_a_usage_error(self, tmp_path,
                                                        capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["--quick", "batch", "--resume"]) == 2
        assert "nothing to resume" in capsys.readouterr().err

    def test_results_document_is_stable_across_reruns(self, tmp_path,
                                                      capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        argv = ["--quick", "batch", "--apps", "ParMult"]
        assert main(argv + ["--results", "one.json"]) == 0
        assert main(argv + ["--results", "two.json"]) == 0
        one = (tmp_path / "one.json").read_bytes()
        assert one == (tmp_path / "two.json").read_bytes()
        document = json.loads(one)
        assert document["schema"] == "repro-exp-results/v1"
        assert len(document["results"]) == 3

    def test_harness_chaos_profile_finishes_with_zero_lost(self, tmp_path,
                                                           capsys,
                                                           monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(
            [
                "--quick", "batch", "--apps", "ParMult",
                "--harness-chaos", "cache-corrupt", "--harness-seed", "1",
            ]
        ) == 0
        summary = _summary(capsys)
        assert summary["lost_specs"] == 0
        assert summary["quarantined"] == 0
        assert "chaos_fired" in summary

    def test_unknown_harness_profile_is_a_usage_error(self, tmp_path,
                                                      capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(
            ["--quick", "batch", "--harness-chaos", "tornado"]
        ) == 2

    def test_strict_mode_aborts_on_first_failure(self, tmp_path, capsys,
                                                 monkeypatch):
        # An unknown app fails spec construction inside the worker; in
        # strict mode that must surface as exit 2, like the legacy path.
        monkeypatch.chdir(tmp_path)
        assert main(
            ["--quick", "batch", "--grid", "chaos", "--apps", "nope",
             "--strict"]
        ) == 2


class TestOrchestratedTables:
    def test_table3_uses_cache_dir(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        argv = ["--quick", "table3", "--cache-dir", str(tmp_path / "c")]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert first == second
        assert (tmp_path / "c").is_dir()

    def test_sweep_routes_through_orchestrator(self, tmp_path, capsys,
                                               monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(
            [
                "--quick", "sweep", "--apps", "ParMult",
                "--thresholds", "0", "4",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "threshold sweep" in out
        assert out.count("\n  ") >= 2  # one line per threshold


class TestTournamentGrid:
    def test_tournament_options_parse(self):
        args = build_parser().parse_args(
            [
                "batch",
                "--grid", "tournament",
                "--apps", "Gfetch",
                "--policies", "move-threshold", "bandit:seed=7",
            ]
        )
        assert args.grid == "tournament"
        assert args.policies == ["move-threshold", "bandit:seed=7"]

    def test_tournament_runs_entrants_and_baselines(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        argv = [
            "--quick", "batch", "--grid", "tournament",
            "--apps", "ParMult",
            "--policies", "move-threshold", "adaptive-threshold",
        ]
        assert main(argv) == 0
        # Two entrants plus the shared Tglobal/Tlocal baselines.
        assert _summary(capsys)["unique"] == 4
        # The warm rerun is served entirely from the cache.
        assert main(argv + ["--require-cache-ratio", "1.0"]) == 0
        warm = _summary(capsys)
        assert warm["executed"] == 0
        assert warm["cache_ratio"] == 1.0

    def test_unknown_policy_is_a_usage_error(self, tmp_path, capsys,
                                             monkeypatch):
        monkeypatch.chdir(tmp_path)
        argv = [
            "--quick", "batch", "--grid", "tournament",
            "--policies", "nosuch",
        ]
        assert main(argv) == 2
        err = capsys.readouterr().err
        assert "nosuch" in err and "Traceback" not in err

    def test_bad_policy_parameter_is_a_usage_error(self, tmp_path, capsys,
                                                   monkeypatch):
        monkeypatch.chdir(tmp_path)
        argv = [
            "--quick", "batch", "--grid", "tournament",
            "--policies", "bandit:seed=banana",
        ]
        assert main(argv) == 2
        assert "seed" in capsys.readouterr().err
