"""The event bus: subscription, fan-out, and fast-path guards."""

import pytest

from repro.core.state import AccessKind
from repro.machine.timing import MemoryLocation
from repro.obs.events import EventBus


class Recorder:
    """Observer implementing every hook, recording call order."""

    def __init__(self, name="r"):
        self.name = name
        self.calls = []

    def on_reference(self, *args):
        self.calls.append(("ref", args))

    def on_fault(self, *args):
        self.calls.append(("fault", args))

    def on_fault_resolved(self, *args):
        self.calls.append(("resolved", args))

    def on_round_end(self, round_index):
        self.calls.append(("round", round_index))

    def on_run_end(self, rounds):
        self.calls.append(("run_end", rounds))


class FaultsOnly:
    """Observer subscribing to a single hook."""

    def __init__(self):
        self.faults = []

    def on_fault(self, round_index, cpu, vpage, kind):
        self.faults.append((round_index, cpu, vpage, kind))


class TestSubscription:
    def test_empty_bus_wants_nothing(self):
        bus = EventBus()
        assert not bus.wants_references
        assert not bus.wants_faults
        assert not bus.wants_fault_latency
        assert not bus.wants_rounds
        assert len(bus) == 0

    def test_partial_observer_only_registers_its_hooks(self):
        bus = EventBus()
        bus.subscribe(FaultsOnly())
        assert bus.wants_faults
        assert not bus.wants_references
        assert not bus.wants_rounds

    def test_subscribe_returns_observer(self):
        bus = EventBus()
        observer = Recorder()
        assert bus.subscribe(observer) is observer

    def test_double_subscribe_is_idempotent(self):
        bus = EventBus()
        observer = Recorder()
        bus.subscribe(observer)
        bus.subscribe(observer)
        bus.emit_round_end(3)
        assert observer.calls == [("round", 3)]

    def test_subscribe_none_rejected(self):
        with pytest.raises(ValueError):
            EventBus().subscribe(None)

    def test_unsubscribe_stops_delivery(self):
        bus = EventBus()
        observer = Recorder()
        bus.subscribe(observer)
        bus.unsubscribe(observer)
        bus.emit_round_end(1)
        assert observer.calls == []
        assert not bus.wants_rounds

    def test_unsubscribe_unknown_is_noop(self):
        EventBus().unsubscribe(Recorder())

    def test_constructor_accepts_observers(self):
        observer = Recorder()
        bus = EventBus([observer])
        assert bus.observers == [observer]


class TestFanOut:
    def test_events_reach_all_observers_in_subscription_order(self):
        bus = EventBus()
        first, second = Recorder("a"), Recorder("b")
        order = []
        first.on_fault = lambda *a: order.append("a")
        second.on_fault = lambda *a: order.append("b")
        bus.subscribe(first)
        bus.subscribe(second)
        bus.emit_fault(0, 1, 2, AccessKind.READ)
        assert order == ["a", "b"]

    def test_reference_payload_passed_through(self):
        bus = EventBus()
        observer = Recorder()
        bus.subscribe(observer)
        bus.emit_reference(
            5, 1, 10, 42, 3, 2, MemoryLocation.LOCAL, True
        )
        assert observer.calls == [
            ("ref", (5, 1, 10, 42, 3, 2, MemoryLocation.LOCAL, True))
        ]

    def test_fault_resolved_payload(self):
        bus = EventBus()
        observer = Recorder()
        bus.subscribe(observer)
        bus.emit_fault_resolved(2, 0, 7, AccessKind.WRITE, 123.5)
        assert observer.calls == [
            ("resolved", (2, 0, 7, AccessKind.WRITE, 123.5))
        ]

    def test_run_end(self):
        bus = EventBus()
        observer = Recorder()
        bus.subscribe(observer)
        bus.emit_run_end(17)
        assert observer.calls == [("run_end", 17)]

    def test_observer_without_hook_skipped(self):
        bus = EventBus()
        faults_only = FaultsOnly()
        bus.subscribe(faults_only)
        bus.emit_reference(0, 0, 0, 0, 1, 0, MemoryLocation.GLOBAL, False)
        bus.emit_fault(4, 2, 9, AccessKind.WRITE)
        assert faults_only.faults == [(4, 2, 9, AccessKind.WRITE)]
