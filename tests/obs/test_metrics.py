"""Counters, gauges, fixed-bucket histograms, and the registry."""

import pytest

from repro.errors import ConfigurationError
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter("x")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_rejects_negative_increment(self):
        with pytest.raises(ConfigurationError):
            Counter("x").inc(-1)

    def test_record(self):
        counter = Counter("faults")
        counter.inc(2)
        assert counter.as_record() == {
            "t": "counter",
            "name": "faults",
            "value": 2,
        }


class TestGauge:
    def test_set_and_clear(self):
        gauge = Gauge("alpha")
        assert gauge.value is None
        gauge.set(0.75)
        assert gauge.value == 0.75
        gauge.set(None)
        assert gauge.value is None


class TestHistogram:
    def test_observations_land_in_inclusive_buckets(self):
        histogram = Histogram("h", [10, 20, 50])
        for value in (5, 10, 11, 20, 49, 50):
            histogram.observe(value)
        assert histogram.counts == [2, 2, 2, 0]

    def test_overflow_bucket(self):
        histogram = Histogram("h", [10])
        histogram.observe(11)
        histogram.observe(1000)
        assert histogram.counts == [0, 2]

    def test_summary_statistics(self):
        histogram = Histogram("h", [100])
        for value in (10, 20, 30):
            histogram.observe(value)
        assert histogram.total == 3
        assert histogram.min == 10
        assert histogram.max == 30
        assert histogram.mean == pytest.approx(20)

    def test_empty_mean_is_none(self):
        assert Histogram("h", [1]).mean is None

    def test_rejects_empty_bounds(self):
        with pytest.raises(ConfigurationError):
            Histogram("h", [])

    def test_rejects_unsorted_bounds(self):
        with pytest.raises(ConfigurationError):
            Histogram("h", [10, 5])
        with pytest.raises(ConfigurationError):
            Histogram("h", [5, 5])

    def test_record_round_trips_counts(self):
        histogram = Histogram("h", [1, 2])
        histogram.observe(0)
        histogram.observe(3)
        record = histogram.as_record()
        assert record["bounds"] == [1, 2]
        assert record["counts"] == [1, 0, 1]
        assert record["total"] == 2

    def test_format_mentions_every_bucket(self):
        histogram = Histogram("lat", [10, 100])
        histogram.observe(7)
        text = histogram.format()
        assert "<= 10" in text and "<= 100" in text and "> 100" in text


class TestRegistry:
    def test_instruments_created_once_by_name(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("g") is registry.gauge("g")
        first = registry.histogram("h", [1, 2])
        assert registry.histogram("h") is first

    def test_histogram_requires_bounds_on_creation(self):
        with pytest.raises(ConfigurationError):
            MetricsRegistry().histogram("missing")

    def test_histogram_bounds_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.histogram("h", [1, 2])
        with pytest.raises(ConfigurationError):
            registry.histogram("h", [3, 4])

    def test_as_records_sorted_and_typed(self):
        registry = MetricsRegistry()
        registry.counter("b").inc()
        registry.counter("a").inc(2)
        registry.gauge("g").set(1.0)
        registry.histogram("h", [1]).observe(0)
        records = registry.as_records()
        kinds = [record["t"] for record in records]
        assert kinds == ["counter", "counter", "gauge", "histogram"]
        assert [r["name"] for r in records[:2]] == ["a", "b"]

    def test_as_dict(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        registry.gauge("g").set(0.5)
        flat = registry.as_dict()
        assert flat["c"] == 3
        assert flat["g"] == 0.5
