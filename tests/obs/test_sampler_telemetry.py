"""The round sampler and the Telemetry facade, on real simulations."""

import pytest

from repro.core.policies import MoveThresholdPolicy
from repro.core.stats import NUMAStats
from repro.errors import ConfigurationError
from repro.obs import RoundSampler, Telemetry
from repro.sim.harness import run_once
from repro.workloads import small_workloads


def small(name):
    return small_workloads()[name]


def run_with_telemetry(name, interval=8, processors=3, threshold=4):
    telemetry = Telemetry(sample_interval=interval)
    result = run_once(
        small(name),
        MoveThresholdPolicy(threshold=threshold),
        n_processors=processors,
        check_invariants=False,
        telemetry=telemetry,
    )
    return result, telemetry


class TestRoundSampler:
    def test_rejects_zero_interval(self, rig):
        with pytest.raises(ConfigurationError):
            RoundSampler(rig.machine, rig.numa, rig.pool, interval=0)

    def test_sample_cadence_and_final_flush(self):
        result, telemetry = run_with_telemetry("Primes3", interval=4)
        samples = telemetry.samples
        assert samples, "run must produce at least one sample"
        # Every window spans at least the configured interval except the
        # final flush, which covers whatever remained.
        for sample in samples[:-1]:
            assert sample.window_rounds >= 4
        # The series ends at the last executed round.
        assert samples[-1].round_index == result.rounds - 1

    def test_deltas_sum_to_final_totals(self):
        result, telemetry = run_with_telemetry("Primes2", interval=4)
        samples = telemetry.samples
        for key, total in samples[-1].stats_total.items():
            assert sum(s.stats_delta[key] for s in samples) == total, key
        assert samples[-1].stats_total["moves"] == result.stats.moves

    def test_rounds_are_monotonic(self):
        _, telemetry = run_with_telemetry("FFT", interval=4)
        rounds = [s.round_index for s in telemetry.samples]
        assert rounds == sorted(rounds)
        assert len(set(rounds)) == len(rounds)

    def test_occupancy_and_times_present(self):
        _, telemetry = run_with_telemetry("IMatMult", interval=8)
        last = telemetry.samples[-1]
        assert last.pool_capacity > 0
        assert last.directory_pages >= 0
        assert last.user_us > 0
        assert len(last.per_cpu_user_us) == 3
        assert last.pinned_pages is not None  # MoveThresholdPolicy exposes it

    def test_local_hit_window_fraction_in_range(self):
        _, telemetry = run_with_telemetry("Primes1", interval=4)
        for sample in telemetry.samples:
            if sample.window_local_hit is not None:
                assert 0.0 <= sample.window_local_hit <= 1.0
            for per_cpu in sample.per_cpu_window_local_hit:
                assert per_cpu is None or 0.0 <= per_cpu <= 1.0

    def test_sample_record_is_flat_jsonable(self):
        import json

        _, telemetry = run_with_telemetry("PlyTrace", interval=8)
        record = telemetry.samples[0].as_record()
        assert record["t"] == "sample"
        json.dumps(record)  # must not raise


class TestTelemetryNeutrality:
    """Acceptance: telemetry must not change any simulated-time result."""

    @pytest.mark.parametrize("name", ["ParMult", "Primes2", "FFT"])
    def test_simulated_times_identical_with_and_without(self, name):
        plain = run_once(
            small(name),
            MoveThresholdPolicy(threshold=4),
            n_processors=3,
            check_invariants=False,
        )
        observed, _ = run_with_telemetry(name, interval=4)
        assert observed.user_time_us == plain.user_time_us
        assert observed.system_time_us == plain.system_time_us
        assert observed.rounds == plain.rounds
        assert observed.stats.as_dict() == plain.stats.as_dict()


class TestTelemetryInstruments:
    def test_fault_counters_match_stats(self):
        result, telemetry = run_with_telemetry("Primes2")
        flat = telemetry.registry.as_dict()
        stats = result.stats.as_dict()
        assert flat["read_faults"] == stats["read_faults"]
        assert flat["write_faults"] == stats["write_faults"]

    def test_fault_latency_histogram_counts_every_fault(self):
        result, telemetry = run_with_telemetry("Primes2")
        histogram = telemetry.registry.histograms["fault_latency_us"]
        assert histogram.total == result.stats.total_faults()
        assert histogram.min >= 0

    def test_page_move_histogram_from_policy(self):
        result, telemetry = run_with_telemetry("Primes2", threshold=1)
        histogram = telemetry.registry.histograms["page_move_count"]
        # Only pages that actually moved appear in the policy's counts.
        assert histogram.total >= 1
        assert result.stats.moves >= histogram.total

    def test_local_hit_gauges_per_cpu(self):
        _, telemetry = run_with_telemetry("Primes1", processors=3)
        gauges = telemetry.registry.gauges
        for cpu in range(3):
            assert f"cpu{cpu}_local_hit" in gauges

    def test_profiler_covers_engine_phases(self):
        _, telemetry = run_with_telemetry("Primes2")
        names = {stat.name for stat in telemetry.profiler.phases}
        assert "engine_run" in names
        assert "fault_handling" in names
        assert "reference_batch" in names

    def test_tlb_counters_present_and_consistent(self):
        _, telemetry = run_with_telemetry("Gfetch")
        flat = telemetry.registry.as_dict()
        for key in ("tlb_hits", "tlb_misses", "tlb_fills",
                    "tlb_shootdowns"):
            assert key in flat, key
        assert flat["tlb_hits"] > 0
        # Every miss on the reference path fills (or refreshes) an entry.
        assert flat["tlb_fills"] <= flat["tlb_misses"]

    def test_tlb_hit_ratio_gauge(self):
        _, telemetry = run_with_telemetry("Gfetch")
        flat = telemetry.registry.as_dict()
        ratio = telemetry.registry.gauges["tlb_hit_ratio"].value
        lookups = flat["tlb_hits"] + flat["tlb_misses"]
        assert ratio == flat["tlb_hits"] / lookups
        assert 0.0 < ratio <= 1.0

    def test_samples_carry_tlb_windows(self):
        _, telemetry = run_with_telemetry("Gfetch", interval=4)
        records = [s.as_record() for s in telemetry.samples]
        assert all("tlb_hit" in r and "tlb_shootdowns" in r for r in records)
        # Window hit fractions are deltas, so each stays within [0, 1].
        ratios = [r["tlb_hit"] for r in records if r["tlb_hit"] is not None]
        assert ratios and all(0.0 <= value <= 1.0 for value in ratios)

    def test_to_records_contains_all_sections(self):
        _, telemetry = run_with_telemetry("FFT")
        records = telemetry.to_records({"workload": "FFT"})
        kinds = {record["t"] for record in records}
        assert {"meta", "sample", "counter", "gauge", "histogram",
                "phase"} <= kinds

    def test_finalize_is_idempotent(self):
        _, telemetry = run_with_telemetry("ParMult")
        before = telemetry.registry.histograms["page_move_count"].total
        telemetry.finalize()
        telemetry.finalize()
        assert (
            telemetry.registry.histograms["page_move_count"].total == before
        )
