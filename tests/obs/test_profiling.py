"""Wall-clock phase profiling."""

import pytest

from repro.obs.profiling import PhaseProfiler, PhaseStat


class TestPhaseStat:
    def test_mean_of_empty_phase_is_zero(self):
        assert PhaseStat("x").mean_s == 0.0

    def test_record_shape(self):
        stat = PhaseStat("fault", calls=2, total_s=4.0, max_s=3.0)
        record = stat.as_record()
        assert record["t"] == "phase"
        assert record["mean_s"] == pytest.approx(2.0)


class TestPhaseProfiler:
    def test_add_accumulates_calls_total_max(self):
        profiler = PhaseProfiler()
        profiler.add("fault", 0.5)
        profiler.add("fault", 1.5)
        stat = profiler.phase("fault")
        assert stat.calls == 2
        assert stat.total_s == pytest.approx(2.0)
        assert stat.max_s == pytest.approx(1.5)
        assert stat.mean_s == pytest.approx(1.0)

    def test_span_measures_elapsed_time(self):
        profiler = PhaseProfiler()
        with profiler.span("work"):
            sum(range(1000))
        stat = profiler.phase("work")
        assert stat.calls == 1
        assert stat.total_s > 0

    def test_span_charges_on_exception(self):
        profiler = PhaseProfiler()
        with pytest.raises(RuntimeError):
            with profiler.span("boom"):
                raise RuntimeError("x")
        assert profiler.phase("boom").calls == 1

    def test_phases_sorted_most_expensive_first(self):
        profiler = PhaseProfiler()
        profiler.add("cheap", 0.1)
        profiler.add("expensive", 5.0)
        assert [s.name for s in profiler.phases] == ["expensive", "cheap"]
        records = profiler.as_records()
        assert records[0]["name"] == "expensive"

    def test_format_handles_empty_and_filled(self):
        profiler = PhaseProfiler()
        assert "no phases" in profiler.format()
        profiler.add("tick", 0.001)
        assert "tick" in profiler.format()
