"""JSONL/CSV exporters, the human summary, and the CLI sink."""

import json

from repro.obs.exporters import (
    JsonSink,
    human_summary,
    read_jsonl,
    write_csv,
    write_jsonl,
)


def sample_record(round_index=10, moves=3):
    return {
        "t": "sample",
        "round": round_index,
        "window": 10,
        "delta": {"moves": moves, "syncs": 1},
        "total": {"moves": moves, "syncs": 1},
        "pool_live": 4,
        "pool_capacity": 64,
        "pool_pending": 0,
        "directory_pages": 4,
        "pinned_pages": 0,
        "user_us": 100.0,
        "system_us": 50.0,
        "per_cpu_user_us": [60.0, 40.0],
        "local_hit": 0.5,
        "per_cpu_local_hit": [0.25, 0.75],
    }


class TestJsonl:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "t.jsonl"
        records = [{"t": "meta", "workload": "X"}, sample_record()]
        assert write_jsonl(records, path) == 2
        assert read_jsonl(path) == records

    def test_empty(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        assert write_jsonl([], path) == 0
        assert read_jsonl(path) == []


class TestCsv:
    def test_nested_fields_flattened(self, tmp_path):
        path = tmp_path / "t.csv"
        assert write_csv([sample_record()], path) == 1
        header, row = path.read_text().strip().splitlines()
        assert "delta.moves" in header
        assert "per_cpu_user_us.0" in header
        columns = dict(zip(header.split(","), row.split(",")))
        assert columns["delta.moves"] == "3"
        assert columns["per_cpu_local_hit.1"] == "0.75"

    def test_explicit_columns_respected(self, tmp_path):
        path = tmp_path / "t.csv"
        write_csv([sample_record()], path, columns=["round", "local_hit"])
        assert path.read_text().splitlines()[0] == "round,local_hit"


class TestHumanSummary:
    def test_renders_all_record_kinds(self):
        records = [
            {"t": "meta", "workload": "ParMult"},
            sample_record(),
            {"t": "counter", "name": "references", "value": 12},
            {"t": "gauge", "name": "cpu0_local_hit", "value": 0.667},
            {"t": "gauge", "name": "cpu1_local_hit", "value": None},
            {
                "t": "histogram",
                "name": "fault_latency_us",
                "bounds": [10, 100],
                "counts": [1, 2, 0],
                "total": 3,
                "sum": 120.0,
                "min": 5.0,
                "max": 90.0,
                "mean": 40.0,
            },
            {
                "t": "phase",
                "name": "fault_handling",
                "calls": 3,
                "total_s": 0.001,
                "mean_s": 0.00033,
                "max_s": 0.0005,
            },
        ]
        text = human_summary(records)
        assert "workload=ParMult" in text
        assert "1 samples" in text
        assert "references" in text
        assert "cpu0_local_hit" in text and "na" in text
        assert "fault_latency_us" in text
        assert "fault_handling" in text

    def test_empty_records(self):
        assert human_summary([]) == ""


class TestJsonSink:
    def test_collects_and_writes(self, tmp_path):
        sink = JsonSink()
        sink.add({"t": "meta", "command": "x"})
        sink.extend([{"t": "row", "v": 1}, {"t": "row", "v": 2}])
        assert len(sink) == 3
        path = tmp_path / "sink.jsonl"
        assert sink.write(path) == 3
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert lines[0]["command"] == "x"
        assert [l.get("v") for l in lines[1:]] == [1, 2]
