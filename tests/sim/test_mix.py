"""Multiprogrammed mixes: several tasks on one machine."""

import pytest

from repro.core.policies import MoveThresholdPolicy
from repro.sim.harness import run_once
from repro.sim.mix import run_mix
from repro.workloads.imatmult import IMatMult
from repro.workloads.parmult import ParMult
from repro.workloads.primes import Primes1, Primes3


class TestRunMix:
    def test_single_workload_mix_matches_run_once(self):
        mix = run_mix(
            [ParMult.small()], MoveThresholdPolicy(threshold=4), n_processors=4
        )
        solo = run_once(ParMult.small(), MoveThresholdPolicy(threshold=4), n_processors=4)
        assert mix.total_user_us == pytest.approx(solo.user_time_us)

    def test_task_attribution_sums_to_total(self):
        mix = run_mix(
            [ParMult.small(), Primes1.small()],
            MoveThresholdPolicy(threshold=4),
            n_processors=4,
        )
        assert sum(t.user_time_us for t in mix.tasks) == pytest.approx(
            mix.total_user_us
        )

    def test_task_named_lookup(self):
        mix = run_mix(
            [ParMult.small(), Primes1.small()],
            MoveThresholdPolicy(threshold=4),
            n_processors=4,
        )
        assert mix.task_named("ParMult").task == 0
        assert mix.task_named("Primes1").task == 1
        with pytest.raises(KeyError):
            mix.task_named("nope")

    def test_positional_extras_are_deprecated_but_work(self):
        """Positional args beyond (workloads, policy) still run, with a
        DeprecationWarning steering callers to keywords."""
        with pytest.warns(DeprecationWarning, match="run_mix"):
            legacy = run_mix([ParMult.small()], MoveThresholdPolicy(threshold=4), 4)
        modern = run_mix(
            [ParMult.small()], MoveThresholdPolicy(threshold=4), n_processors=4
        )
        assert legacy.total_user_us == modern.total_user_us
        assert legacy.rounds == modern.rounds

    def test_invariants_checked_by_default(self):
        """run_mix now shares run_once's check_invariants=True default."""
        import repro.sim.mix as mix_mod

        assert mix_mod._RUN_MIX_DEFAULTS["check_invariants"] is True

    def test_same_application_twice_does_not_cross_barriers(self):
        """Two IMatMult tasks use identical barrier names; they must
        synchronize within their own task only."""
        mix = run_mix(
            [IMatMult.small(), IMatMult.small()],
            MoveThresholdPolicy(threshold=4),
            n_processors=4,
        )
        a, b = mix.tasks
        assert a.user_time_us > 0 and b.user_time_us > 0
        assert a.user_time_us == pytest.approx(b.user_time_us, rel=0.05)

    def test_mix_placement_matches_standalone(self):
        """The introduction's claim: each application in the mix keeps
        (almost) the locality it had standalone."""
        solo = run_once(
            Primes1.small(), MoveThresholdPolicy(threshold=4), n_processors=4,
            check_invariants=False,
        )
        mix = run_mix(
            [Primes1.small(), Primes3.small()],
            MoveThresholdPolicy(threshold=4),
            n_processors=4,
        )
        mixed = mix.task_named("Primes1").user_time_us
        assert mixed == pytest.approx(solo.user_time_us, rel=0.05)

    def test_mix_invariants_hold(self):
        from repro.sim.mix import run_mix as rm

        result = rm(
            [IMatMult.small(), Primes3.small()],
            MoveThresholdPolicy(threshold=4),
            n_processors=4,
            check_invariants=True,
        )
        assert result.stats.moves > 0

    def test_tasks_occupy_disjoint_virtual_ranges(self):
        """No address-space identifiers in the MMUs, so tasks must not
        collide on virtual page numbers — one task would otherwise
        translate straight into another task's frames."""
        from repro.core.policies import MoveThresholdPolicy as MTP
        from repro.sim.mix import run_mix as rm
        from repro.machine.machine import Machine
        from repro.machine.config import ace_config
        from repro.core.numa_manager import NUMAManager
        from repro.vm.address_space import AddressSpace
        from repro.vm.fault import FaultHandler
        from repro.vm.page_pool import PagePool
        from repro.vm.pmap import ACEPmap
        from repro.workloads.base import BuildContext

        # Build two task spaces the way run_mix does and check ranges.
        spaces = [
            AddressSpace(name=f"t{i}", first_vpage=0x100 + i * 0x100000)
            for i in range(2)
        ]
        config = ace_config(2)
        for i, space in enumerate(spaces):
            ctx = BuildContext(
                space=space,
                n_threads=2,
                n_processors=2,
                machine_config=config,
            )
            ParMult.small().build(ctx)
        vpages = [
            {vp for region in space.regions for vp in region.vpages()}
            for space in spaces
        ]
        assert vpages[0].isdisjoint(vpages[1])

    def test_identical_twins_get_identical_times(self):
        mix = run_mix(
            [ParMult.small(), ParMult.small()],
            MoveThresholdPolicy(threshold=4),
            n_processors=2,
        )
        a, b = mix.tasks
        assert a.user_time_us == pytest.approx(b.user_time_us, rel=0.05)
