"""Engine ↔ policy wiring: ticks, invalidations, multi-task accounting."""

import pytest

from repro.core.policies import MoveThresholdPolicy, ReconsiderPolicy
from repro.sim.engine import Engine
from repro.sim.ops import Compute, MemBlock
from repro.threads.cthreads import CThread
from repro.threads.scheduler import AffinityScheduler
from repro.vm.vm_object import shared_object
from tests.conftest import make_rig


class TestInvalidationWiring:
    def test_engine_applies_policy_invalidations(self):
        """An expired pin's invalidation request actually unmaps."""
        policy = ReconsiderPolicy(threshold=0, interval_us=1.0)
        rig = make_rig(n_processors=2, policy=policy)
        region = rig.space.map_object(shared_object("d", 1))
        vpage = region.vpage_at(0)

        def writer(cpu_hint):
            # Ping-pong enough to pin, then compute long enough for the
            # pin to expire, then read again.
            for _ in range(3):
                yield MemBlock(vpage, writes=4)
                yield Compute(10.0)
            for _ in range(400):
                yield Compute(50.0)
            yield MemBlock(vpage, reads=4)

        threads = [
            CThread(name="a", index=0, body=writer(0)),
            CThread(name="b", index=1, body=writer(1)),
        ]
        engine = Engine(
            rig.machine,
            rig.faults,
            AffinityScheduler(2),
            policy_tick_ops=16,
        )
        engine.run(threads)
        assert policy.unpin_count >= 1
        # The final reads re-faulted (the invalidation dropped mappings)
        # and re-replicated the page locally.
        page = region.vm_object.resident_page(0)
        entry = rig.numa.directory.get(page.page_id)
        assert entry.local_copies  # cacheable again

    def test_invalidation_of_freed_page_is_harmless(self, rig):
        region = rig.space.map_object(shared_object("d", 1))
        from repro.core.state import AccessKind

        rig.faults.handle(0, region.vpage_at(0), AccessKind.WRITE)
        page = region.vm_object.resident_page(0)
        page_id = page.page_id
        rig.pool.free(page, cpu=0)
        assert rig.numa.invalidate_page_id(page_id, acting_cpu=0) is False

    def test_invalidate_live_page(self, rig):
        region = rig.space.map_object(shared_object("d", 1))
        from repro.core.state import AccessKind

        rig.faults.handle(0, region.vpage_at(0), AccessKind.WRITE)
        page = region.vm_object.resident_page(0)
        assert rig.numa.invalidate_page_id(page.page_id, acting_cpu=0)
        assert rig.machine.cpu(0).mmu.lookup(region.vpage_at(0)) is None


class TestTaskAccounting:
    def test_single_task_accounting_matches_user_time(self, rig):
        region = rig.space.map_object(shared_object("d", 1))
        body = iter(
            [Compute(100.0), MemBlock(region.vpage_at(0), reads=10)]
        )
        engine = Engine(rig.machine, rig.faults, AffinityScheduler(4))
        engine.run([CThread(name="t", index=0, body=body)])
        assert engine.task_user_us[0] == pytest.approx(
            rig.machine.total_user_time_us()
        )

    def test_unknown_task_raises(self, rig):
        region = rig.space.map_object(shared_object("d", 1))
        body = iter([MemBlock(region.vpage_at(0), reads=1)])
        engine = Engine(rig.machine, rig.faults, AffinityScheduler(4))
        with pytest.raises(KeyError):
            engine.run(
                [CThread(name="t", index=0, body=body, task=9)]
            )


class TestParserNegatives:
    def test_unknown_command_exits(self):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_bad_processor_count_is_caught_at_run(self, capsys):
        from repro.cli import main

        # Configuration errors exit with the stable usage-error code (2)
        # and a one-line message instead of a traceback.
        assert main(["--quick", "--processors", "0", "table3"]) == 2
        assert "error" in capsys.readouterr().err
