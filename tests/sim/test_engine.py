"""The simulation engine: execution, faults, barriers, syscalls."""

import pytest

from repro.core.state import AccessKind
from repro.errors import SimulationError
from repro.machine.timing import MemoryLocation
from repro.sim.engine import Engine
from repro.sim.ops import Barrier, Compute, FreeObjectPages, MemBlock, Syscall
from repro.threads.cthreads import CThread
from repro.threads.scheduler import AffinityScheduler
from repro.threads.unix_master import UnixMaster
from repro.vm.vm_object import shared_object, stack_object
from tests.conftest import make_rig


def make_engine(rig, unix_master=None, observer=None) -> Engine:
    return Engine(
        rig.machine,
        rig.faults,
        AffinityScheduler(rig.machine.n_cpus),
        unix_master=unix_master,
        observer=observer,
    )


def run(rig, bodies, **kwargs) -> Engine:
    engine = make_engine(rig, **kwargs)
    threads = [
        CThread(name=f"t{i}", index=i, body=body)
        for i, body in enumerate(bodies)
    ]
    engine.run(threads)
    return engine


class TestBasicExecution:
    def test_compute_charges_user_time(self, rig):
        run(rig, [iter([Compute(10.0), Compute(5.0)])])
        assert rig.machine.cpu(0).user_time_us == pytest.approx(15.0)

    def test_threads_run_on_their_bound_cpus(self, rig):
        run(rig, [iter([Compute(1.0)]), iter([Compute(2.0)])])
        assert rig.machine.cpu(0).user_time_us == pytest.approx(1.0)
        assert rig.machine.cpu(1).user_time_us == pytest.approx(2.0)

    def test_empty_thread_list(self, rig):
        assert make_engine(rig).run([]) == 0

    def test_unknown_op_rejected(self, rig):
        with pytest.raises(SimulationError):
            run(rig, [iter(["bogus"])])


class TestMemoryBlocks:
    def test_first_touch_faults_then_charges_local(self, rig):
        region = rig.space.map_object(shared_object("d", 1))
        run(rig, [iter([MemBlock(region.vpage_at(0), reads=10)])])
        cpu = rig.machine.cpu(0)
        expected = 10 * rig.machine.timing.fetch_us(MemoryLocation.LOCAL)
        assert cpu.user_time_us == pytest.approx(expected)
        assert cpu.system_time_us > 0  # the fault path

    def test_second_block_does_not_fault(self, rig):
        region = rig.space.map_object(shared_object("d", 1))
        run(
            rig,
            [
                iter(
                    [
                        MemBlock(region.vpage_at(0), reads=1),
                        MemBlock(region.vpage_at(0), reads=1),
                    ]
                )
            ],
        )
        assert rig.faults.fault_count == 1

    def test_read_then_write_double_faults(self, rig):
        """min/max protection: read maps read-only, write upgrades."""
        region = rig.space.map_object(shared_object("d", 1))
        run(rig, [iter([MemBlock(region.vpage_at(0), reads=1, writes=1)])])
        assert rig.faults.fault_count == 2

    def test_data_refs_counted_for_writable_regions_only(self, rig):
        from repro.vm.vm_object import text_object

        data = rig.space.map_object(shared_object("d", 1))
        code = rig.space.map_object(text_object("c", 1))
        run(
            rig,
            [
                iter(
                    [
                        MemBlock(data.vpage_at(0), reads=5),
                        MemBlock(code.vpage_at(0), reads=7),
                    ]
                )
            ],
        )
        cpu = rig.machine.cpu(0)
        assert cpu.data_refs.total() == 5
        assert cpu.all_refs.total() == 12


class TestBarriers:
    def test_barrier_synchronizes_phases(self, rig):
        order = []

        def body_a():
            order.append("a1")
            yield Compute(1.0)
            yield Barrier("mid")
            order.append("a2")
            yield Compute(1.0)

        def body_b():
            order.append("b1")
            yield Compute(1.0)
            yield Compute(1.0)
            yield Compute(1.0)
            yield Barrier("mid")
            order.append("b2")
            yield Compute(1.0)

        run(rig, [body_a(), body_b()])
        # a2 must not appear before b reaches the barrier (b1 done).
        assert order.index("a2") > order.index("b1")
        assert "a2" in order and "b2" in order

    def test_finished_threads_release_barriers(self, rig):
        def waiter():
            yield Barrier("end")
            yield Compute(1.0)

        def quick():
            yield Compute(1.0)
            # finishes without reaching the barrier

        run(rig, [waiter(), quick()])
        assert rig.machine.cpu(0).user_time_us == pytest.approx(1.0)

    def test_mismatched_barriers_deadlock(self, rig):
        def one():
            yield Barrier("x")

        def two():
            yield Barrier("y")

        with pytest.raises(SimulationError):
            run(rig, [one(), two()])


class TestSyscalls:
    def test_service_time_lands_on_master(self, rig):
        master = UnixMaster(master_cpu=0)
        bodies = [iter([Syscall(service_us=100.0)]) for _ in range(2)]
        run(rig, bodies, unix_master=master)
        assert rig.machine.cpu(0).system_time_us == pytest.approx(200.0)
        assert rig.machine.cpu(1).system_time_us == 0.0

    def test_touched_pages_referenced_from_master(self, rig):
        """Section 4.6: syscalls referencing user memory from the master
        drag otherwise-private pages into shared state."""
        region = rig.space.map_object(stack_object("stk", 1, owner_thread=1))
        vpage = region.vpage_at(0)

        def body():
            yield MemBlock(vpage, reads=0, writes=10)  # thread 1, cpu 1
            yield Syscall(service_us=50.0, touched=((vpage, 0, 2),))
            yield MemBlock(vpage, reads=0, writes=10)

        placeholder = iter([Compute(0.5)])
        run(rig, [placeholder, body()], unix_master=UnixMaster(master_cpu=0))
        page = region.vm_object.resident_page(0)
        entry = rig.numa.directory.get(page.page_id)
        # The master's write moved ownership, so the page has a move.
        assert entry.move_count >= 1

    def test_syscall_refs_not_counted_as_user_alpha(self, rig):
        region = rig.space.map_object(shared_object("d", 1))
        vpage = region.vpage_at(0)
        run(
            rig,
            [iter([Syscall(service_us=10.0, touched=((vpage, 3, 3),))])],
        )
        assert rig.machine.cpu(0).data_refs.total() == 0


class TestFreeObjectPages:
    def test_free_op_releases_resident_pages(self, rig):
        obj = shared_object("d", 2)
        region = rig.space.map_object(obj)

        def body():
            yield MemBlock(region.vpage_at(0), writes=1)
            yield MemBlock(region.vpage_at(1), writes=1)
            yield FreeObjectPages(obj)

        run(rig, [body()])
        assert obj.resident_page(0) is None
        assert obj.resident_page(1) is None
        assert rig.numa.stats.pages_freed == 2


class TestObserver:
    def test_observer_sees_references_and_faults(self, rig):
        events = {"refs": 0, "faults": 0}

        class Spy:
            def on_reference(self, *args, **kwargs):
                events["refs"] += 1

            def on_fault(self, *args, **kwargs):
                events["faults"] += 1

        region = rig.space.map_object(shared_object("d", 1))
        run(
            rig,
            [iter([MemBlock(region.vpage_at(0), reads=1, writes=1)])],
            observer=Spy(),
        )
        assert events["refs"] == 2  # read part + write part
        assert events["faults"] == 2


class TestPolicyTick:
    def test_policy_tick_is_called(self, rig):
        ticks = []
        original = rig.policy.tick
        rig.numa.policy.tick = lambda now: ticks.append(now)  # type: ignore
        try:
            bodies = [iter([Compute(1.0) for _ in range(600)])]
            engine = Engine(
                rig.machine,
                rig.faults,
                AffinityScheduler(rig.machine.n_cpus),
                policy_tick_ops=100,
            )
            engine.run(
                [CThread(name="t", index=0, body=bodies[0])]
            )
        finally:
            rig.numa.policy.tick = original  # type: ignore
        assert len(ticks) >= 5
        assert ticks == sorted(ticks)
