"""The engine's TLB fast path: equivalence, fills, and livelock bounds."""

import pytest

from repro.core.policies import MoveThresholdPolicy
from repro.errors import FaultResolutionError
from repro.machine.timing import MemoryLocation
from repro.sim.engine import MAX_FAULT_RESOLUTION_ATTEMPTS, Engine
from repro.sim.harness import build_simulation
from repro.sim.ops import MemBlock
from repro.threads.cthreads import CThread
from repro.threads.scheduler import AffinityScheduler
from repro.vm.vm_object import shared_object
from repro.workloads import small_workloads


def run_both_paths(workload_factory, n_processors=4):
    """Run the same workload with and without the fast path."""
    sims = []
    for fast_path in (True, False):
        sim = build_simulation(
            workload_factory(),
            MoveThresholdPolicy(threshold=4),
            n_processors=n_processors,
            fast_path=fast_path,
        )
        sim.engine.run(sim.threads)
        sims.append(sim)
    return sims


class TestEquivalence:
    """The tentpole's fidelity gate: both paths simulate the same run."""

    @pytest.mark.parametrize("name", ["ParMult", "Gfetch", "IMatMult"])
    def test_fast_and_slow_paths_are_bit_identical(self, name):
        fast, slow = run_both_paths(lambda: small_workloads()[name])
        assert (
            fast.machine.total_user_time_us()
            == slow.machine.total_user_time_us()
        )
        assert (
            fast.machine.total_system_time_us()
            == slow.machine.total_system_time_us()
        )
        assert fast.numa.stats.as_dict() == slow.numa.stats.as_dict()
        assert fast.engine.rounds == slow.engine.rounds
        for fast_cpu, slow_cpu in zip(fast.machine.cpus, slow.machine.cpus):
            assert fast_cpu.all_refs == slow_cpu.all_refs
            assert fast_cpu.data_refs == slow_cpu.data_refs

    def test_fast_path_actually_engages(self):
        fast, slow = run_both_paths(lambda: small_workloads()["Gfetch"])
        assert fast.machine.tlb_counters()["hits"] > 0
        assert fast.engine.fast_path and not slow.engine.fast_path

    def test_slow_path_never_consults_the_tlb(self):
        """Shootdowns still flow (the funnel is unconditional), but the
        reference path must not look up or fill anything."""
        _, slow = run_both_paths(lambda: small_workloads()["Gfetch"])
        counters = slow.machine.tlb_counters()
        for key in ("hits", "misses", "fills", "evictions"):
            assert counters[key] == 0, counters


class TestFillBehavior:
    def _engine(self, rig):
        return Engine(
            rig.machine,
            rig.faults,
            AffinityScheduler(rig.machine.n_cpus),
        )

    def _run(self, rig, ops):
        engine = self._engine(rig)
        engine.run([CThread(name="t0", index=0, body=iter(ops))])
        return engine

    def test_repeat_blocks_hit_after_one_miss(self):
        from tests.conftest import make_rig

        rig = make_rig()
        vpage = rig.space.map_object(shared_object("d", 1)).vpage_at(0)
        self._run(rig, [MemBlock(vpage, reads=5) for _ in range(4)])
        tlb = rig.machine.cpu(0).tlb
        assert tlb.misses == 1  # first block faulted and filled
        assert tlb.hits == 3

    def test_protection_upgrade_refills_with_write_rights(self):
        from tests.conftest import make_rig

        rig = make_rig()
        vpage = rig.space.map_object(shared_object("d", 1)).vpage_at(0)
        self._run(
            rig,
            [
                MemBlock(vpage, reads=5),  # read-only fill
                MemBlock(vpage, writes=2),  # upgrade: miss, refault, refill
                MemBlock(vpage, writes=2),  # now a hit
            ],
        )
        tlb = rig.machine.cpu(0).tlb
        assert tlb.misses == 2
        assert tlb.hits == 1
        assert tlb.lookup(vpage, need_write=True) is not None

    def test_fill_caches_the_landed_location(self):
        """The entry must describe where the page ended up, post-fault."""
        from tests.conftest import make_rig

        rig = make_rig()
        vpage = rig.space.map_object(shared_object("d", 1)).vpage_at(0)
        self._run(rig, [MemBlock(vpage, reads=1)])
        entry = rig.machine.cpu(0).tlb.lookup(vpage)
        frame = rig.machine.cpu(0).mmu.lookup(vpage).frame
        location = frame.location_for(0)
        assert entry.location is location
        assert entry.fetch_us == rig.machine.timing.fetch_us(location)


class TestFaultResolutionBound:
    def test_unresolvable_fault_raises_structured_error(self):
        from tests.conftest import make_rig

        rig = make_rig()
        region = rig.space.map_object(shared_object("d", 1))
        vpage = region.vpage_at(0)

        class StuckHandler:
            """Resolves the address but never establishes a mapping."""

            space = rig.space
            pool = rig.pool
            pmap = rig.pmap

            def handle(self, cpu, vpage, kind):
                pass

        engine = Engine(
            rig.machine,
            StuckHandler(),
            AffinityScheduler(rig.machine.n_cpus),
        )
        thread = CThread(
            name="t0", index=0, body=iter([MemBlock(vpage, reads=1)])
        )
        with pytest.raises(FaultResolutionError) as exc:
            engine.run([thread])
        error = exc.value
        assert error.cpu == 0
        assert error.vpage == vpage
        assert error.attempts == MAX_FAULT_RESOLUTION_ATTEMPTS
        assert error.details["kind"] == "read"
        record = error.as_record()
        assert record["t"] == "fault_resolution_error"
        assert record["attempts"] == MAX_FAULT_RESOLUTION_ATTEMPTS
