"""Operation value objects."""

import pytest

from repro.sim.ops import Barrier, Compute, FreeObjectPages, MemBlock, Syscall
from repro.vm.vm_object import shared_object


class TestMemBlock:
    def test_valid_block(self):
        block = MemBlock(vpage=10, reads=3, writes=1)
        assert block.reads == 3 and block.writes == 1

    def test_empty_block_rejected(self):
        with pytest.raises(ValueError):
            MemBlock(vpage=10, reads=0, writes=0)

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            MemBlock(vpage=10, reads=-1, writes=1)
        with pytest.raises(ValueError):
            MemBlock(vpage=10, reads=1, writes=-1)

    def test_blocks_are_hashable_values(self):
        assert MemBlock(1, 2, 3) == MemBlock(1, 2, 3)
        assert hash(MemBlock(1, 2, 3)) == hash(MemBlock(1, 2, 3))


class TestOtherOps:
    def test_compute(self):
        assert Compute(5.0).us == 5.0

    def test_barrier_carries_name(self):
        assert Barrier("phase1").name == "phase1"

    def test_syscall_defaults(self):
        call = Syscall(service_us=10.0)
        assert call.touched == () and call.name == ""

    def test_free_object_pages_holds_object(self):
        obj = shared_object("x", 1)
        assert FreeObjectPages(obj).vm_object is obj
