"""Engine observation: the event bus and the legacy ``observer=`` kwarg."""

from repro.analysis.tracing import TraceCollector
from repro.obs.events import EventBus
from repro.sim.engine import Engine
from repro.sim.ops import Compute, MemBlock
from repro.threads.cthreads import CThread
from repro.threads.scheduler import AffinityScheduler
from repro.vm.vm_object import shared_object
from tests.conftest import make_rig


def run_engine(rig, bodies, **kwargs):
    engine = Engine(
        rig.machine,
        rig.faults,
        AffinityScheduler(rig.machine.n_cpus),
        **kwargs,
    )
    threads = [
        CThread(name=f"t{i}", index=i, body=body)
        for i, body in enumerate(bodies)
    ]
    engine.run(threads)
    return engine


class RoundWatcher:
    def __init__(self):
        self.rounds = []
        self.run_end = None

    def on_round_end(self, round_index):
        self.rounds.append(round_index)

    def on_run_end(self, rounds):
        self.run_end = rounds


class TestLegacyObserverCompat:
    """The deprecated single ``observer=`` kwarg keeps working via the bus."""

    def test_legacy_observer_still_sees_references_and_faults(self):
        rig = make_rig()
        region = rig.space.map_object(shared_object("d", 1))
        trace = TraceCollector()
        run_engine(
            rig,
            [iter([MemBlock(region.vpage_at(0), reads=4, writes=2)])],
            observer=trace,
        )
        assert len(trace.events) == 2  # one read block, one write block
        assert len(trace.faults) >= 1
        assert trace.events[0].reads == 4

    def test_legacy_observer_lands_on_the_bus(self):
        rig = make_rig()
        trace = TraceCollector()
        engine = run_engine(rig, [iter([Compute(1.0)])], observer=trace)
        assert trace in engine.bus.observers

    def test_legacy_observer_composes_with_bus_subscribers(self):
        rig = make_rig()
        region = rig.space.map_object(shared_object("d", 1))
        legacy = TraceCollector()
        second = TraceCollector()
        engine = Engine(
            rig.machine,
            rig.faults,
            AffinityScheduler(rig.machine.n_cpus),
            observer=legacy,
        )
        engine.add_observer(second)
        threads = [
            CThread(
                name="t0",
                index=0,
                body=iter([MemBlock(region.vpage_at(0), reads=3)]),
            )
        ]
        engine.run(threads)
        assert len(legacy.events) == len(second.events) == 1
        assert legacy.events[0].reads == second.events[0].reads == 3


class TestBusEvents:
    def test_round_end_emitted_per_round(self):
        rig = make_rig()
        watcher = RoundWatcher()
        engine = run_engine(
            rig,
            [iter([Compute(1.0), Compute(1.0)])],
            bus=EventBus([watcher]),
        )
        assert watcher.rounds == list(range(engine.rounds))

    def test_run_end_reports_round_count(self):
        rig = make_rig()
        watcher = RoundWatcher()
        engine = run_engine(
            rig, [iter([Compute(1.0)])], bus=EventBus([watcher])
        )
        assert watcher.run_end == engine.rounds

    def test_run_end_emitted_for_empty_thread_list(self):
        rig = make_rig()
        watcher = RoundWatcher()
        engine = Engine(
            rig.machine,
            rig.faults,
            AffinityScheduler(rig.machine.n_cpus),
            bus=EventBus([watcher]),
        )
        assert engine.run([]) == 0
        assert watcher.run_end == 0

    def test_fault_resolved_carries_simulated_latency(self):
        rig = make_rig()

        class LatencyWatcher:
            def __init__(self):
                self.latencies = []

            def on_fault_resolved(
                self, round_index, cpu, vpage, kind, system_us
            ):
                self.latencies.append(system_us)

        watcher = LatencyWatcher()
        region = rig.space.map_object(shared_object("d", 1))
        run_engine(
            rig,
            [iter([MemBlock(region.vpage_at(0), reads=1)])],
            bus=EventBus([watcher]),
        )
        assert watcher.latencies, "first touch must fault"
        assert all(latency > 0 for latency in watcher.latencies)

    def test_unobserved_run_has_empty_bus(self):
        rig = make_rig()
        engine = run_engine(rig, [iter([Compute(1.0)])])
        assert len(engine.bus) == 0
