"""Run harness and result plumbing."""

import pytest

from repro.core.policies import AllGlobalPolicy, MoveThresholdPolicy
from repro.machine.config import MachineConfig
from repro.machine.timing import MemoryLocation
from repro.sim.harness import build_simulation, measure_placement, run_once
from repro.sim.ops import Compute, MemBlock
from repro.sim.result import CPUTimes, RunResult
from repro.core.stats import NUMAStats
from repro.machine.cpu import ReferenceCounters
from repro.threads.scheduler import GlobalQueueScheduler
from repro.workloads.base import Workload
from repro.workloads.layout import LayoutBuilder


class MiniWorkload(Workload):
    """Fixed total work split among threads: 60 writes to a shared page,
    600 private reads, a little compute."""

    name = "mini"
    g_over_l = 2.0

    def build(self, ctx):
        layout = LayoutBuilder(ctx)
        shared = layout.shared("s", 16)
        stacks = [layout.stack(t) for t in range(ctx.n_threads)]
        per = 60 // ctx.n_threads

        def body(t):
            for _ in range(per):
                yield MemBlock(shared.vpage_at(0), writes=1)
                yield MemBlock(stacks[t].vpage_at(0), reads=10)
                yield Compute(20.0)

        return [body(t) for t in range(ctx.n_threads)]


class TestRunOnce:
    def test_returns_populated_result(self):
        result = run_once(MiniWorkload(), MoveThresholdPolicy(threshold=4), n_processors=3)
        assert isinstance(result, RunResult)
        assert result.workload == "mini"
        assert result.n_processors == 3
        assert result.n_threads == 3
        assert result.user_time_us > 0
        assert result.system_time_us > 0
        assert result.rounds > 0

    def test_thread_count_defaults_to_processors(self):
        result = run_once(MiniWorkload(), MoveThresholdPolicy(threshold=4), n_processors=2)
        assert result.n_threads == 2

    def test_explicit_machine_config(self):
        config = MachineConfig(
            n_processors=2, local_pages_per_cpu=32, global_pages=64
        )
        result = run_once(
            MiniWorkload(), MoveThresholdPolicy(threshold=4), machine_config=config
        )
        assert result.n_processors == 2

    def test_custom_scheduler_migrations_reported(self):
        result = run_once(
            MiniWorkload(),
            MoveThresholdPolicy(threshold=4),
            n_processors=3,
            scheduler_factory=lambda n: GlobalQueueScheduler(n, 5),
        )
        assert result.migrations > 0

    def test_build_simulation_exposes_parts(self):
        sim = build_simulation(MiniWorkload(), MoveThresholdPolicy(threshold=4), 2)
        assert sim.machine.n_cpus == 2
        assert len(sim.threads) == 2
        assert sim.context.n_threads == 2


class TestMeasurePlacement:
    def test_three_runs_with_right_policies(self):
        m = measure_placement(MiniWorkload(), n_processors=3)
        assert m.numa.policy.startswith("move-threshold")
        assert m.all_global.policy == "all-global"
        assert m.local.policy == "all-local"
        assert m.local.n_processors == 1
        assert m.local.n_threads == 1

    def test_global_run_is_slowest(self):
        m = measure_placement(MiniWorkload(), n_processors=3)
        assert m.t_global_s >= m.t_numa_s >= 0
        assert m.t_numa_s >= m.t_local_s * 0.99

    def test_threshold_parameter_respected(self):
        m = measure_placement(MiniWorkload(), n_processors=3, threshold=9)
        assert "9" in m.numa.policy


class TestRunResult:
    def make(self, local=10, global_=0):
        refs = ReferenceCounters()
        refs.record(MemoryLocation.LOCAL, local, 0)
        refs.record(MemoryLocation.GLOBAL, global_, 0)
        return RunResult(
            workload="w",
            policy="p",
            n_processors=1,
            n_threads=1,
            per_cpu=[CPUTimes(0, 100.0, 10.0)],
            stats=NUMAStats(),
            data_refs=refs,
            all_refs=refs,
            rounds=1,
        )

    def test_time_aggregation(self):
        result = self.make()
        assert result.user_time_us == 100.0
        assert result.system_time_us == 10.0
        assert result.user_time_s == pytest.approx(1e-4)

    def test_measured_alpha(self):
        assert self.make(local=8, global_=2).measured_alpha == pytest.approx(0.8)

    def test_measured_alpha_none_without_data_refs(self):
        assert self.make(local=0, global_=0).measured_alpha is None

    def test_summary_contains_key_fields(self):
        text = self.make().summary()
        assert "w" in text and "p" in text and "alpha" in text

    def test_store_fraction(self):
        refs = ReferenceCounters()
        refs.record(MemoryLocation.LOCAL, 6, 4)
        result = RunResult(
            workload="w",
            policy="p",
            n_processors=1,
            n_threads=1,
            per_cpu=[],
            stats=NUMAStats(),
            data_refs=refs,
            all_refs=refs,
            rounds=0,
        )
        assert result.store_fraction == pytest.approx(0.4)
