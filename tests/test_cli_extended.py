"""CLI coverage for the analysis commands added beyond the tables."""

import pathlib

import pytest

from repro.cli import main


class TestAnalysisCommands:
    def test_bus(self, capsys):
        assert main(["--quick", "--processors", "3", "bus"]) == 0
        out = capsys.readouterr().out
        assert "IPC-bus utilization" in out
        assert "rho=" in out

    def test_speedup(self, capsys):
        assert (
            main(
                [
                    "--quick",
                    "--processors",
                    "4",
                    "speedup",
                    "--apps",
                    "Primes1",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "speedup curve" in out
        assert "efficiency" in out

    def test_advise(self, capsys):
        assert (
            main(
                [
                    "--quick",
                    "--processors",
                    "3",
                    "advise",
                    "--apps",
                    "Primes3",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "layout advice" in out

    def test_false_sharing(self, capsys):
        assert main(["--quick", "--processors", "3", "false-sharing"]) == 0
        out = capsys.readouterr().out
        assert "alpha" in out
        assert "paper 0.66" in out

    def test_optimal(self, capsys):
        assert main(["--quick", "--processors", "3", "optimal"]) == 0
        out = capsys.readouterr().out
        assert "actual/optimal" in out

    def test_report(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["--quick", "--processors", "2", "report"]) == 0
        report = pathlib.Path(tmp_path, "REPORT.md")
        assert report.exists()
        text = report.read_text()
        assert "## Table 3" in text
        assert "## Figure 2" in text

    def test_mix(self, capsys):
        assert (
            main(
                [
                    "--quick",
                    "--processors",
                    "3",
                    "mix",
                    "--apps",
                    "ParMult",
                    "Primes1",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "application mix" in out
        assert "standalone" in out

    def test_alpha(self, capsys):
        assert main(["--quick", "--processors", "3", "alpha"]) == 0
        out = capsys.readouterr().out
        assert "α(measured)" in out
