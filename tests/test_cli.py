"""The command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_global_options(self):
        args = build_parser().parse_args(
            ["--processors", "3", "--threshold", "2", "--quick", "table3"]
        )
        assert args.processors == 3
        assert args.threshold == 2
        assert args.quick

    def test_all_commands_parse(self):
        parser = build_parser()
        for command in (
            "table3",
            "table4",
            "tables12",
            "figures",
            "latency",
            "alpha",
            "sweep",
            "false-sharing",
            "optimal",
            "all",
        ):
            args = parser.parse_args([command])
            assert callable(args.func)

    def test_global_options_accepted_after_the_command(self):
        args = build_parser().parse_args(
            ["table3", "--quick", "--processors", "3", "--json", "o.jsonl"]
        )
        assert args.quick
        assert args.processors == 3
        assert args.json == "o.jsonl"

    def test_metrics_command_options(self):
        args = build_parser().parse_args(
            ["metrics", "parmult", "--quick", "--sample-interval", "8"]
        )
        assert args.workload == "parmult"
        assert args.sample_interval == 8


class TestCommands:
    def test_tables12(self, capsys):
        assert main(["tables12"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "Table 2" in out
        assert "sync&flush other" in out

    def test_figures(self, capsys):
        assert main(["--processors", "4", "figures"]) == 0
        out = capsys.readouterr().out
        assert "pmap manager" in out
        assert "4 processor modules" in out

    def test_latency(self, capsys):
        assert main(["latency"]) == 0
        out = capsys.readouterr().out
        assert "0.65" in out and "2.3" in out

    def test_quick_table3(self, capsys):
        assert main(["--quick", "--processors", "3", "table3"]) == 0
        out = capsys.readouterr().out
        assert "Table 3" in out
        assert "IMatMult" in out and "PlyTrace" in out

    def test_quick_table4(self, capsys):
        assert main(["--quick", "--processors", "3", "table4"]) == 0
        out = capsys.readouterr().out
        assert "ΔS" in out

    def test_quick_sweep_single_app(self, capsys):
        assert (
            main(
                [
                    "--quick",
                    "--processors",
                    "2",
                    "sweep",
                    "--apps",
                    "IMatMult",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "threshold sweep" in out


class TestMetricsCommand:
    def test_metrics_prints_summary(self, capsys):
        assert main(["metrics", "parmult", "--quick", "--processors", "3"]) == 0
        out = capsys.readouterr().out
        assert "workload=ParMult" in out
        assert "time series:" in out
        assert "fault_latency_us" in out
        assert "phase profile" in out

    def test_metrics_unknown_workload_fails_loudly(self, capsys):
        # A bad name exits 2 with a tidy one-line message, no traceback.
        assert main(["metrics", "nosuch", "--quick"]) == 2
        err = capsys.readouterr().err
        assert "nosuch" in err
        assert "choose from" in err

    def test_metrics_json_export(self, tmp_path, capsys):
        path = tmp_path / "out.jsonl"
        assert (
            main(
                [
                    "metrics",
                    "parmult",
                    "--quick",
                    "--processors",
                    "3",
                    "--json",
                    str(path),
                ]
            )
            == 0
        )
        records = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        kinds = {record["t"] for record in records}
        # The acceptance contract: time series + histograms + profile.
        assert {"meta", "sample", "counter", "histogram", "phase"} <= kinds
        meta = records[0]
        assert meta["workload"] == "ParMult"
        samples = [r for r in records if r["t"] == "sample"]
        assert samples[-1]["round"] == meta["rounds"] - 1


class TestJsonFlag:
    def test_table3_json_rows(self, tmp_path, capsys):
        path = tmp_path / "t3.jsonl"
        assert (
            main(
                ["--quick", "--processors", "3", "table3", "--json", str(path)]
            )
            == 0
        )
        records = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        assert len(records) == 8  # one row per Table 3 application
        assert all(r["t"] == "evaluation_row" for r in records)
        by_app = {r["application"]: r for r in records}
        assert "ParMult" in by_app and "PlyTrace" in by_app
        row = by_app["IMatMult"]
        assert row["t_numa_s"] > 0
        assert "moves" in row["stats"]

    def test_latency_json(self, tmp_path, capsys):
        path = tmp_path / "lat.jsonl"
        assert main(["latency", "--json", str(path)]) == 0
        records = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        assert all(r["t"] == "latency" for r in records)
        assert any(r["paper"] == 0.65 for r in records)

    def test_unstructured_command_writes_marker(self, tmp_path, capsys):
        path = tmp_path / "t12.jsonl"
        assert main(["tables12", "--json", str(path)]) == 0
        records = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        assert records == [{"t": "meta", "command": "tables12"}]

    def test_no_json_flag_writes_nothing(self, tmp_path, capsys):
        assert main(["latency"]) == 0
        assert list(tmp_path.iterdir()) == []


class TestCheckCommands:
    def test_lint_command_exits_clean_on_this_repo(self, capsys):
        assert main(["lint"]) == 0
        out = capsys.readouterr().out
        assert "0 violation(s)" in out

    def test_lint_command_flags_a_bad_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("def f(items=[]):\n    pass\n")
        assert main(["lint", str(bad)]) == 1
        assert "RN004" in capsys.readouterr().out

    def test_lint_json_records(self, tmp_path, capsys):
        path = tmp_path / "lint.jsonl"
        assert main(["lint", "--json", str(path)]) == 0
        records = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        assert records[-1]["t"] == "lint_summary"
        assert records[-1]["violations"] == 0

    def test_modelcheck_command_verifies_the_tables(self, capsys):
        assert main(["modelcheck"]) == 0
        out = capsys.readouterr().out
        assert "VERDICT: OK" in out
        assert "16" in out

    def test_modelcheck_json_records(self, tmp_path, capsys):
        path = tmp_path / "mc.jsonl"
        assert main(["modelcheck", "--json", str(path)]) == 0
        records = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        assert records[-1]["t"] == "modelcheck_summary"
        assert records[-1]["ok"] is True

    def test_races_static_exits_clean_on_this_repo(self, capsys):
        assert main(["races", "--static"]) == 0
        out = capsys.readouterr().out
        assert "guard inference" in out
        assert "no unguarded sites" in out
        assert "races: OK" in out

    def test_races_full_pass_catches_both_fixtures(self, capsys):
        assert (
            main(
                [
                    "races",
                    "--quick",
                    "--processors",
                    "4",
                    "--profiles",
                    "none",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "dynamic: ParMult/none seed=0: 0 race(s)" in out
        assert "fixture unguarded-directory-write: caught" in out
        assert "fixture missed-shootdown: caught" in out

    def test_races_json_records(self, tmp_path, capsys):
        path = tmp_path / "races.jsonl"
        assert main(["races", "--static", "--json", str(path)]) == 0
        records = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        assert records[-1] == {"t": "race_check_summary", "ok": True}
        assert any(r["t"] == "guard_summary" for r in records)

    def test_lint_format_json_prints_records(self, capsys):
        assert main(["lint", "--format", "json"]) == 0
        lines = capsys.readouterr().out.splitlines()
        records = [json.loads(line) for line in lines]
        assert records[-1]["t"] == "lint_summary"

    def test_lint_format_table_prints_markdown(self, capsys):
        assert main(["lint", "--format", "table"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("| ")
        assert "lint_summary" in out

    def test_modelcheck_format_table(self, capsys):
        assert main(["modelcheck", "--format", "table"]) == 0
        out = capsys.readouterr().out
        assert "|---|" in out
        assert "modelcheck_summary" in out

    def test_unknown_workload_is_a_tidy_exit(self, capsys):
        # Exercise several commands' workload lookups, not just metrics.
        for argv in (
            ["sweep", "--quick", "--apps", "NoSuchApp"],
            ["speedup", "--quick", "--apps", "NoSuchApp"],
            ["mix", "--quick", "--apps", "NoSuchApp", "ParMult"],
        ):
            assert main(argv) == 2
            err = capsys.readouterr().err
            assert "NoSuchApp" in err
            assert "Traceback" not in err


class TestChaosCommand:
    def test_chaos_parses_profile_and_seed(self):
        args = build_parser().parse_args(
            ["chaos", "parmult", "--profile", "frame-loss", "--seed", "9"]
        )
        assert args.workload == "parmult"
        assert args.profile == "frame-loss"
        assert args.seed == 9
        assert callable(args.func)

    def test_quick_chaos_prints_a_recovery_report(self, capsys):
        argv = [
            "--quick",
            "--processors",
            "4",
            "chaos",
            "parmult",
            "--profile",
            "transient",
            "--seed",
            "7",
        ]
        assert main(argv) == 0
        decoded = json.loads(capsys.readouterr().out)
        assert decoded["profile"] == "transient"
        assert decoded["seed"] == 7
        assert decoded["sanitized"] is True

    def test_chaos_output_is_byte_identical_for_a_seed(self, capsys):
        argv = [
            "--quick",
            "--processors",
            "4",
            "chaos",
            "parmult",
            "--profile",
            "storm",
            "--seed",
            "11",
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        assert capsys.readouterr().out == first

    def test_chaos_json_sink_gets_the_report(self, tmp_path, capsys):
        path = tmp_path / "chaos.jsonl"
        argv = [
            "--quick",
            "--processors",
            "4",
            "chaos",
            "parmult",
            "--profile",
            "none",
            "--json",
            str(path),
        ]
        assert main(argv) == 0
        records = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        assert records[-1]["t"] == "chaos_report"
        assert records[-1]["profile"] == "none"

    def test_unknown_profile_is_a_tidy_exit(self, capsys):
        assert main(["--quick", "chaos", "parmult", "--profile", "x"]) == 2
        err = capsys.readouterr().err
        assert "unknown fault profile" in err
        assert "Traceback" not in err


class TestTopologyCli:
    def test_topologies_lists_the_registry(self, capsys):
        assert main(["topologies"]) == 0
        out = capsys.readouterr().out
        for name in ("ace", "2socket8", "4socket32"):
            assert name in out

    def test_topologies_json_records(self, tmp_path, capsys):
        path = tmp_path / "topo.jsonl"
        assert main(["topologies", "--json", str(path)]) == 0
        records = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        rows = [r for r in records if r["t"] == "topology"]
        assert [r["name"] for r in rows] == ["ace", "2socket8", "4socket32"]
        assert rows[2]["multilevel"] is True
        assert rows[2]["cpus"] == 32

    def test_unknown_machine_is_a_usage_error(self, capsys):
        assert main(["modelcheck", "--machine", "nosuch"]) == 2
        err = capsys.readouterr().err
        assert "unknown machine" in err
        assert "Traceback" not in err

    def test_modelcheck_runs_the_multilevel_layer(self, capsys):
        assert main(["modelcheck", "--machine", "2socket8"]) == 0
        out = capsys.readouterr().out
        assert "reachable multi-level configurations" in out
        assert "VERDICT: OK" in out

    def test_modelcheck_default_stays_flat(self, capsys):
        assert main(["modelcheck"]) == 0
        out = capsys.readouterr().out
        assert "reachable multi-level configurations" not in out

    def test_chaos_on_a_multilevel_machine(self, tmp_path, capsys):
        path = tmp_path / "chaos.jsonl"
        argv = [
            "--quick",
            "--machine",
            "2socket8",
            "chaos",
            "parmult",
            "--profile",
            "none",
            "--json",
            str(path),
        ]
        assert main(argv) == 0
        records = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        assert records[-1]["t"] == "chaos_report"
        assert records[-1]["n_processors"] == 8


class TestPoliciesCommand:
    def test_policies_parses(self):
        args = build_parser().parse_args(["policies", "--format", "json"])
        assert args.format == "json"
        assert callable(args.func)

    def test_policies_lists_the_registry(self, capsys):
        assert main(["policies"]) == 0
        out = capsys.readouterr().out
        for name in (
            "move-threshold", "adaptive-threshold",
            "bandwidth-aware", "bandit",
        ):
            assert name in out

    def test_policies_json_rows(self, capsys):
        assert main(["policies", "--format", "json"]) == 0
        rows = [
            json.loads(line)
            for line in capsys.readouterr().out.splitlines()
            if line.strip().startswith("{")
        ]
        by_name = {row["name"]: row for row in rows}
        assert "seed:int=0" in by_name["bandit"]["params"]
        assert by_name["all-global"]["params"] == ""
