"""The command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_global_options(self):
        args = build_parser().parse_args(
            ["--processors", "3", "--threshold", "2", "--quick", "table3"]
        )
        assert args.processors == 3
        assert args.threshold == 2
        assert args.quick

    def test_all_commands_parse(self):
        parser = build_parser()
        for command in (
            "table3",
            "table4",
            "tables12",
            "figures",
            "latency",
            "alpha",
            "sweep",
            "false-sharing",
            "optimal",
            "all",
        ):
            args = parser.parse_args([command])
            assert callable(args.func)


class TestCommands:
    def test_tables12(self, capsys):
        assert main(["tables12"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "Table 2" in out
        assert "sync&flush other" in out

    def test_figures(self, capsys):
        assert main(["--processors", "4", "figures"]) == 0
        out = capsys.readouterr().out
        assert "pmap manager" in out
        assert "4 processor modules" in out

    def test_latency(self, capsys):
        assert main(["latency"]) == 0
        out = capsys.readouterr().out
        assert "0.65" in out and "2.3" in out

    def test_quick_table3(self, capsys):
        assert main(["--quick", "--processors", "3", "table3"]) == 0
        out = capsys.readouterr().out
        assert "Table 3" in out
        assert "IMatMult" in out and "PlyTrace" in out

    def test_quick_table4(self, capsys):
        assert main(["--quick", "--processors", "3", "table4"]) == 0
        out = capsys.readouterr().out
        assert "ΔS" in out

    def test_quick_sweep_single_app(self, capsys):
        assert (
            main(
                [
                    "--quick",
                    "--processors",
                    "2",
                    "sweep",
                    "--apps",
                    "IMatMult",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "threshold sweep" in out
