"""Protocol model checker: clean pass, tamper detection, reachability."""

import pytest

from repro.check.modelcheck import (
    PAPER_TABLE_1,
    PAPER_TABLE_2,
    run_model_check,
)
from repro.core import transitions
from repro.core.state import PageState, PlacementDecision
from repro.core.transitions import ActionSpec, Cleanup, StateKey


class TestCleanRun:
    def test_the_implementation_matches_the_paper(self):
        report = run_model_check()
        assert report.ok, report.format()
        assert report.exit_code == 0

    def test_all_sixteen_cells_are_verified(self):
        report = run_model_check()
        assert report.cells_checked == 16
        assert len(PAPER_TABLE_1) == len(PAPER_TABLE_2) == 8

    def test_reachable_space_is_explored(self):
        report = run_model_check(n_cpus=3)
        # UNTOUCHED, GW, 3x LW, and the non-empty RO copy subsets.
        assert report.n_configs == 12
        assert report.unreached_cells == []

    def test_more_cpus_only_grow_the_space(self):
        assert run_model_check(n_cpus=4).n_configs > 12

    def test_report_records_include_summary(self):
        records = run_model_check().as_records()
        assert records[-1]["t"] == "modelcheck_summary"
        assert records[-1]["ok"] is True


class TestTLBLayer:
    """Layer 4: cached-translation reachability over the same walk."""

    def test_tlb_space_is_explored_and_clean(self):
        report = run_model_check()
        assert report.n_tlb_configs > report.n_configs
        assert report.tlb_failures == []

    def test_more_cpus_grow_the_tlb_space(self):
        small = run_model_check(n_cpus=3).n_tlb_configs
        assert run_model_check(n_cpus=4).n_tlb_configs > small

    def test_missed_shootdown_is_a_tlb_failure(self, monkeypatch):
        # Steal a READ_ONLY page for writing without flushing the other
        # readers: their cached translations survive into LOCAL_WRITABLE,
        # which the TLB invariant forbids.
        key = (PlacementDecision.LOCAL, StateKey.READ_ONLY)
        spec = transitions.WRITE_TABLE[key]
        monkeypatch.setitem(
            transitions.WRITE_TABLE,
            key,
            ActionSpec(Cleanup.NONE, spec.copy_to_local, spec.new_state),
        )
        report = run_model_check()
        assert not report.ok
        assert any("cached by" in m for m in report.tlb_failures)
        assert "TLB coherence failures" in report.format()

    def test_summary_record_counts_tlb_configs(self):
        records = run_model_check().as_records()
        assert records[-1]["n_tlb_configs"] > 0


class TestTamperDetection:
    """Corrupt the live tables; every layer must notice."""

    def test_wrong_new_state_is_a_mismatch(self, monkeypatch):
        key = (PlacementDecision.LOCAL, StateKey.READ_ONLY)
        monkeypatch.setitem(
            transitions.READ_TABLE,
            key,
            ActionSpec(Cleanup.NONE, True, PageState.GLOBAL_WRITABLE),
        )
        report = run_model_check()
        assert not report.ok
        assert any("read/local" in m for m in report.mismatches)

    def test_missing_cell_is_a_totality_failure(self, monkeypatch):
        pruned = dict(transitions.WRITE_TABLE)
        del pruned[(PlacementDecision.LOCAL, StateKey.GLOBAL_WRITABLE)]
        monkeypatch.setattr(transitions, "WRITE_TABLE", pruned)
        report = run_model_check()
        assert not report.ok
        assert report.totality_failures

    def test_skipped_sync_is_a_semantic_failure(self, monkeypatch):
        # "Forget" to sync the other owner's dirty copy before stealing
        # the page: semantically a data-loss bug even if self-consistent.
        key = (PlacementDecision.LOCAL, StateKey.LOCAL_WRITABLE_OTHER)
        monkeypatch.setitem(
            transitions.READ_TABLE,
            key,
            ActionSpec(Cleanup.NONE, True, PageState.READ_ONLY),
        )
        report = run_model_check()
        assert not report.ok
        assert any("sync" in m for m in report.semantic_failures)

    def test_stale_copy_leak_is_an_invariant_failure(self, monkeypatch):
        # Promote to GLOBAL_WRITABLE without flushing the replicas: the
        # abstract walk reaches a GW config that still has local copies.
        key = (PlacementDecision.GLOBAL, StateKey.READ_ONLY)
        monkeypatch.setitem(
            transitions.READ_TABLE,
            key,
            ActionSpec(Cleanup.NONE, False, PageState.GLOBAL_WRITABLE),
        )
        monkeypatch.setitem(
            transitions.WRITE_TABLE,
            key,
            ActionSpec(Cleanup.NONE, False, PageState.GLOBAL_WRITABLE),
        )
        report = run_model_check()
        assert not report.ok
        assert report.invariant_failures

    def test_tampering_never_crashes_the_checker(self, monkeypatch):
        # Whatever the corruption, the checker reports rather than dies.
        for key in list(transitions.READ_TABLE):
            monkeypatch.setitem(
                transitions.READ_TABLE,
                key,
                ActionSpec(Cleanup.NONE, False, PageState.GLOBAL_WRITABLE),
            )
        report = run_model_check()
        assert not report.ok
        assert "FAILED" in report.format()


class TestTotalitySweep:
    """Property-style sweep: the tables are total over their domain."""

    @pytest.mark.parametrize("kind", list(transitions.AccessKind))
    @pytest.mark.parametrize(
        "decision", [PlacementDecision.LOCAL, PlacementDecision.GLOBAL]
    )
    @pytest.mark.parametrize("key", list(StateKey))
    def test_every_cell_resolves(self, kind, decision, key):
        spec = transitions.lookup(kind, decision, key)
        assert isinstance(spec, ActionSpec)
        lines = spec.describe()
        assert len(lines) == 3


class TestMultilevelLayer:
    """Layer 5: the same-socket remote-mapping move on socket machines."""

    def _topology(self):
        from repro.machine.topology import resolve_machine

        return resolve_machine("2socket8").topology

    def test_skipped_without_a_topology(self):
        report = run_model_check()
        assert report.n_ml_configs == 0
        assert report.ml_failures == []
        assert "reachable multi-level" not in report.format()

    def test_flat_topology_skips_the_layer(self):
        from repro.machine.topology import flat_topology

        report = run_model_check(topology=flat_topology(7))
        assert report.n_ml_configs == 0

    def test_multilevel_walk_is_explored_and_clean(self):
        report = run_model_check(topology=self._topology())
        assert report.ok, report.format()
        # Remote-mapper sets strictly enlarge the plain abstract space.
        assert report.n_ml_configs > run_model_check(n_cpus=4).n_configs
        assert "reachable multi-level" in report.format()

    def test_summary_record_carries_the_ml_count(self):
        report = run_model_check(topology=self._topology())
        summary = report.as_records()[-1]
        assert summary["n_ml_configs"] == report.n_ml_configs

    def test_invariant_rejects_malformed_remote_sets(self):
        from repro.check.modelcheck import _ml_invariant

        lw = PageState.LOCAL_WRITABLE
        # cpu 1 shares cpu 0's socket: a legal remote mapping.
        assert _ml_invariant((lw, 0, frozenset({0}), frozenset({1}))) is None
        # cpu 2 sits on the other socket: the override never builds this.
        bad = _ml_invariant((lw, 0, frozenset({0}), frozenset({2})))
        assert bad is not None and "cross-socket" in bad
        # a remote mapper that is also the owner, or also holds a copy
        assert _ml_invariant((lw, 0, frozenset({0}), frozenset({0})))
        assert _ml_invariant(
            (lw, 0, frozenset({0, 1}), frozenset({1}))
        )
        # mappers need a LOCAL_WRITABLE frame to point into
        assert _ml_invariant(
            (PageState.GLOBAL_WRITABLE, None, frozenset(), frozenset({1}))
        )

    def test_walk_finishes_even_with_the_invariant_silenced(
        self, monkeypatch
    ):
        from repro.check import modelcheck

        monkeypatch.setattr(
            modelcheck, "_ml_invariant", lambda config: None
        )
        report = run_model_check(topology=self._topology())
        assert report.n_ml_configs > 0
        assert report.ml_failures == []
