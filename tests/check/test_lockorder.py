"""Lock-order checker: acquisition graph and cycle detection."""

import pytest

from repro.check.lockorder import LockOrderChecker
from repro.errors import ProtocolViolation


class TestAcquisitionGraph:
    def test_nested_acquire_adds_edge(self):
        c = LockOrderChecker()
        c.on_lock_acquire("t1", 10)
        c.on_lock_acquire("t1", 20)
        assert c.edges() == {10: {20}}
        assert c.witness(10, 20) == "t1"

    def test_sequential_acquires_add_no_edge(self):
        c = LockOrderChecker()
        c.on_lock_acquire("t1", 10)
        c.on_lock_release("t1", 10)
        c.on_lock_acquire("t1", 20)
        assert c.edges() == {}

    def test_reentrant_acquire_is_not_a_self_edge(self):
        c = LockOrderChecker()
        c.on_lock_acquire("t1", 10)
        c.on_lock_acquire("t1", 10)
        assert c.edges() == {}

    def test_release_unwinds_most_recent_matching(self):
        c = LockOrderChecker()
        c.on_lock_acquire("t1", 10)
        c.on_lock_acquire("t1", 10)
        c.on_lock_release("t1", 10)
        assert c.held_by("t1") == [10]
        c.on_lock_release("t1", 10)
        assert c.held_by("t1") == []

    def test_release_of_unheld_lock_is_ignored(self):
        c = LockOrderChecker()
        c.on_lock_release("t1", 99)
        assert c.held_by("t1") == []

    def test_holders_are_independent(self):
        c = LockOrderChecker()
        c.on_lock_acquire("t1", 10)
        c.on_lock_acquire("t2", 20)
        # t2 holds only 20, so no 10 -> 20 edge exists.
        assert c.edges() == {}
        assert c.held_by("t1") == [10]
        assert c.held_by("t2") == [20]


class TestCycleDetection:
    def test_consistent_order_has_no_cycle(self):
        c = LockOrderChecker()
        for thread in ("t1", "t2", "t3"):
            c.on_lock_acquire(thread, 10)
            c.on_lock_acquire(thread, 20)
            c.on_lock_release(thread, 20)
            c.on_lock_release(thread, 10)
        assert c.find_cycle() is None
        c.check()  # no raise

    def test_abba_cycle_detected(self):
        c = LockOrderChecker()
        # t1: A then B; t2: B then A -- the classic ordering violation.
        c.on_lock_acquire("t1", 10)
        c.on_lock_acquire("t1", 20)
        c.on_lock_release("t1", 20)
        c.on_lock_release("t1", 10)
        c.on_lock_acquire("t2", 20)
        c.on_lock_acquire("t2", 10)
        cycle = c.find_cycle()
        assert cycle is not None
        assert cycle[0] == cycle[-1]
        assert set(cycle) == {10, 20}

    def test_check_raises_structured_violation(self):
        c = LockOrderChecker()
        c.on_lock_acquire("t1", 10)
        c.on_lock_acquire("t1", 20)
        c.on_lock_release("t1", 20)
        c.on_lock_release("t1", 10)
        c.on_lock_acquire("t2", 20)
        c.on_lock_acquire("t2", 10)
        trail = ({"t": "lock_acquire", "vpage": 10},)
        with pytest.raises(ProtocolViolation) as exc:
            c.check(events=trail)
        violation = exc.value
        assert violation.check == "lock-order"
        # The caller's trail survives, followed by one lock_edge event
        # per edge of the cycle carrying the acquisition sites.
        assert violation.events[: len(trail)] == trail
        edge_events = violation.events[len(trail):]
        assert edge_events
        for event in edge_events:
            assert event["type"] == "lock_edge"
            assert event["outer_site"].startswith("test_lockorder.py:")
            assert event["inner_site"].startswith("test_lockorder.py:")
        cycle = violation.details["cycle"]
        assert cycle[0] == cycle[-1]
        # Each edge of the cycle names the thread that created it and
        # the file:line pair that formed the edge.
        assert violation.details["witnesses"]
        for key, value in violation.details["sites"].items():
            assert "->" in key
            assert "test_lockorder.py:" in value

    def test_three_lock_cycle_detected(self):
        c = LockOrderChecker()
        c.on_lock_acquire("t1", 1)
        c.on_lock_acquire("t1", 2)
        c.on_lock_release("t1", 2)
        c.on_lock_release("t1", 1)
        c.on_lock_acquire("t2", 2)
        c.on_lock_acquire("t2", 3)
        c.on_lock_release("t2", 3)
        c.on_lock_release("t2", 2)
        c.on_lock_acquire("t3", 3)
        c.on_lock_acquire("t3", 1)
        cycle = c.find_cycle()
        assert cycle is not None
        assert set(cycle) == {1, 2, 3}


class TestSpinlockObserverWiring:
    def test_spinlock_notifies_observer(self):
        from repro.threads.spinlock import SpinLock, set_lock_observer

        checker = LockOrderChecker()
        previous = set_lock_observer(checker)
        try:
            lock = SpinLock(vpage=42)
            for _ in lock.acquire(holder="t1"):
                pass
            for _ in lock.release(holder="t1"):
                pass
        finally:
            set_lock_observer(previous)
        assert checker.acquisitions == 1
        assert checker.held_by("t1") == []
