"""Race detector: static rules, dynamic lockset/HB layer, fixtures."""

import pytest

from repro.check.lint import lint_source
from repro.check.races import (
    ALL_RULES,
    RACE_RULES,
    RaceDetector,
    attach_detector,
    detach_detector,
    run_race_check,
)
from repro.check.fixtures import (
    run_missed_shootdown_fixture,
    run_unguarded_write_fixture,
)
from repro.errors import ProtocolViolation


def _violations(source: str, relpath: str):
    found, _ = lint_source(source, relpath, rules=RACE_RULES)
    return found


class TestSharedGuardRule:
    def test_unguarded_entry_write_is_flagged(self):
        source = "def rogue(entry):\n    entry.state = 1\n"
        (violation,) = _violations(source, "sim/engine.py")
        assert violation.rule_id == "RN008"
        assert "state" in violation.message

    def test_suppression_comment_honored(self):
        source = (
            "def rogue(entry):\n"
            "    entry.state = 1  # repro-lint: allow[shared-guard]\n"
        )
        assert _violations(source, "sim/engine.py") == []

    def test_funnel_module_is_clean(self):
        source = "def apply(entry):\n    entry.state = 1\n"
        assert _violations(source, "core/actions.py") == []


class TestLockBalanceRule:
    def test_unreleased_acquire_is_flagged(self):
        source = "def f(lock):\n    lock.acquire()\n"
        violations = _violations(source, "sim/engine.py")
        assert any(
            v.rule_id == "RN009" and "without a matching" in v.message
            for v in violations
        )

    def test_return_while_held_is_flagged(self):
        source = (
            "def f(lock, x):\n"
            "    lock.acquire()\n"
            "    if x:\n"
            "        return 1\n"
            "    lock.release()\n"
        )
        violations = _violations(source, "sim/engine.py")
        assert any(
            v.rule_id == "RN009" and "returns while still holding" in v.message
            for v in violations
        )

    def test_balanced_function_is_clean(self):
        source = (
            "def f(lock):\n"
            "    lock.acquire()\n"
            "    lock.release()\n"
        )
        assert _violations(source, "sim/engine.py") == []

    def test_spinlock_module_itself_is_exempt(self):
        source = "def f(lock):\n    lock.acquire()\n"
        assert _violations(source, "threads/spinlock.py") == []


class TestShootdownPairRule:
    def test_bare_mmu_mutation_is_flagged(self):
        source = "def f(cpu, vpage):\n    cpu.mmu.remove(vpage)\n"
        (violation,) = _violations(source, "vm/pmap.py")
        assert violation.rule_id == "RN010"
        assert "missed shootdown" in violation.message

    def test_paired_invalidate_is_clean(self):
        source = (
            "def f(cpu, vpage):\n"
            "    cpu.mmu.remove(vpage)\n"
            "    cpu.tlb.invalidate(vpage)\n"
        )
        assert _violations(source, "vm/pmap.py") == []

    def test_mmu_module_itself_is_exempt(self):
        source = "def f(self, vpage):\n    self._mmu.remove(vpage)\n"
        assert _violations(source, "machine/mmu.py") == []


class TestEmitUnderLockRule:
    def test_emit_inside_critical_region_is_flagged(self):
        source = (
            "def f(self):\n"
            "    self._lock.acquire()\n"
            "    self.bus.emit_transition(1)\n"
            "    self._lock.release()\n"
        )
        (violation,) = _violations(source, "core/numa_manager.py")
        assert violation.rule_id == "RN011"

    def test_emit_after_release_is_clean(self):
        source = (
            "def f(self):\n"
            "    self._lock.acquire()\n"
            "    self._lock.release()\n"
            "    self.bus.emit_transition(1)\n"
        )
        assert _violations(source, "core/numa_manager.py") == []


class TestPackageIsClean:
    def test_full_rule_set_over_the_tree(self):
        from repro.check import lint_paths

        report = lint_paths(rules=ALL_RULES)
        assert report.ok, report.format()


class TestFixtures:
    def test_unguarded_write_fixture_is_caught(self):
        detector = run_unguarded_write_fixture()
        kinds = [r.kind for r in detector.reports]
        assert "unguarded-state-write" in kinds
        report = next(
            r for r in detector.reports
            if r.kind == "unguarded-state-write"
        )
        # The trail carries the events leading up to the rogue write,
        # and the details name the contradiction.
        assert report.events
        assert report.details["expected_state"] != (
            report.details["announced_state"]
        )
        assert report.details["realizable"] is True
        assert "legal_step_exists" in report.details

    def test_missed_shootdown_fixture_is_caught(self):
        detector = run_missed_shootdown_fixture()
        kinds = [r.kind for r in detector.reports]
        assert "missed-shootdown" in kinds
        report = next(
            r for r in detector.reports if r.kind == "missed-shootdown"
        )
        assert report.events
        assert report.cpu == 0
        # The model checker confirms a suppressed shootdown can reach
        # an invariant-violating configuration.
        assert report.details["realizable"] is True

    def test_fixture_output_is_deterministic(self):
        first = run_unguarded_write_fixture()
        second = run_unguarded_write_fixture()
        assert first.as_records() == second.as_records()
        assert first.format() == second.format()

    def test_raise_mode_converts_report_to_violation(self):
        detector = RaceDetector(raise_on_race=True)
        with pytest.raises(ProtocolViolation) as exc:
            detector._report("missed-shootdown", "synthetic", cpu=0)
        assert exc.value.check == "race:missed-shootdown"
        # The collecting list still records it for post-mortem.
        assert detector.reports


class TestDetectorPlumbing:
    def test_counters_shape(self):
        detector = RaceDetector(raise_on_race=False)
        counters = detector.counters()
        assert set(counters) >= {
            "races_accesses",
            "races_sync_edges",
            "races_lock_events",
            "races_candidates",
            "races_reported",
        }
        assert all(v == 0 for v in counters.values())

    def test_attach_replaces_previous_detector_lock_observer(self):
        from repro.threads.spinlock import lock_observers

        class FakeBus:
            def subscribe(self, observer):
                self.observer = observer

        first = attach_detector(object(), FakeBus(), raise_on_race=False)
        try:
            second = attach_detector(
                object(), FakeBus(), raise_on_race=False
            )
            detectors = [
                o for o in lock_observers()
                if isinstance(o, RaceDetector)
            ]
            assert detectors == [second]
        finally:
            detach_detector(first)
            detach_detector(second)

    def test_publish_metrics_exports_counter_deltas(self):
        from repro.obs.metrics import MetricsRegistry

        detector = RaceDetector(raise_on_race=False)
        detector.accesses = 5
        registry = MetricsRegistry()
        detector.publish_metrics(registry)
        detector.accesses = 9
        detector.publish_metrics(registry)
        records = {
            r["name"]: r["value"] for r in registry.as_records()
        }
        assert records["races_accesses"] == 9


class TestRunRaceCheck:
    def test_static_only_is_clean(self):
        report = run_race_check(
            static=True, dynamic=False, fixtures=False
        )
        assert report.static is not None
        assert report.guard_model is not None
        assert report.ok
        assert report.exit_code == 0
        assert "races: OK" in report.format()

    def test_records_end_with_summary(self):
        report = run_race_check(
            static=True, dynamic=False, fixtures=False
        )
        records = report.as_records()
        assert records[-1] == {"t": "race_check_summary", "ok": True}

    def test_fixture_failure_flips_exit_code(self):
        report = run_race_check(
            static=False, dynamic=False, fixtures=False
        )
        report.fixtures["missed-shootdown"] = False
        assert not report.ok
        assert report.exit_code == 1
        assert "MISSED" in report.format()
