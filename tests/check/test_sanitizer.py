"""Runtime protocol sanitizer: clean runs pass, corruptions raise."""

import pytest

from repro.check.sanitizer import (
    ProtocolSanitizer,
    attach_sanitizer,
    maybe_attach_sanitizer,
    sanitizer_enabled,
)
from repro.core.directory import PageDirectory
from repro.core.policies import MoveThresholdPolicy
from repro.core.state import AccessKind, PageState
from repro.errors import ProtocolViolation
from repro.machine.memory import Frame, FrameKind
from repro.sim.harness import build_simulation
from repro.workloads import small_workloads


class FakeNuma:
    """The two attributes the sanitizer reads off a NUMAManager."""

    def __init__(self, policy=None):
        self.directory = PageDirectory()
        self.policy = policy or MoveThresholdPolicy(threshold=4)


def gframe(index=0):
    return Frame(FrameKind.GLOBAL, None, index)


def lframe(cpu, index=0):
    return Frame(FrameKind.LOCAL, cpu, index)


class TestEnablement:
    @pytest.mark.parametrize("value", ["1", "yes", "on", "true", "anything"])
    def test_truthy_values_enable(self, value):
        assert sanitizer_enabled({"REPRO_SANITIZE": value})

    @pytest.mark.parametrize("value", ["", "0", "false", "no", "off", "OFF"])
    def test_falsey_values_disable(self, value):
        assert not sanitizer_enabled({"REPRO_SANITIZE": value})

    def test_unset_disables(self):
        assert not sanitizer_enabled({})

    def test_maybe_attach_respects_the_flag(self):
        numa = FakeNuma()

        class Bus:
            def __init__(self):
                self.subscribed = []

            def subscribe(self, obs):
                self.subscribed.append(obs)

        bus = Bus()
        assert maybe_attach_sanitizer(numa, bus, environ={}) is None
        assert bus.subscribed == []


class TestCleanWorkloadRun:
    def test_small_workload_passes_sanitized(self):
        wl = small_workloads()["ParMult"]
        sim = build_simulation(wl, MoveThresholdPolicy(threshold=4), 4)
        sanitizer = attach_sanitizer(sim.numa, sim.engine.bus)
        try:
            sim.engine.run(sim.threads)
        finally:
            from repro.threads.spinlock import set_lock_observer

            set_lock_observer(None)
        assert sanitizer.checks > 0
        assert sanitizer.trail()[-1]["t"] == "run_end"

    def test_harness_attaches_when_env_set(self, monkeypatch):
        from repro.threads.spinlock import lock_observer, set_lock_observer

        monkeypatch.setenv("REPRO_SANITIZE", "1")
        wl = small_workloads()["ParMult"]
        try:
            sim = build_simulation(wl, MoveThresholdPolicy(threshold=4), 4)
            # The harness installed the sanitizer as the lock observer.
            assert isinstance(lock_observer(), ProtocolSanitizer)
            sim.engine.run(sim.threads)  # and the run passes its checks
        finally:
            set_lock_observer(None)


class TestDirectoryInvariantCheck:
    def test_corrupt_entry_raises_with_trail(self):
        numa = FakeNuma()
        sanitizer = ProtocolSanitizer(numa)
        entry = numa.directory.add(7, gframe())
        # Claim LOCAL_WRITABLE without any local copy: invariant broken.
        entry.state = PageState.LOCAL_WRITABLE
        entry.owner = 2
        sanitizer.on_fault(0, 2, 7, AccessKind.WRITE)
        with pytest.raises(ProtocolViolation) as exc:
            sanitizer.on_transition(
                7, 2, PageState.UNTOUCHED, PageState.LOCAL_WRITABLE, False
            )
        violation = exc.value
        assert violation.check == "directory-invariants"
        assert violation.page_id == 7
        assert violation.details["owner"] == 2
        # The trail contains the fault that led up to the violation.
        kinds = [event["t"] for event in violation.events]
        assert "fault" in kinds and "transition" in kinds

    def test_transition_for_unknown_page_raises(self):
        sanitizer = ProtocolSanitizer(FakeNuma())
        with pytest.raises(ProtocolViolation, match="not in the directory"):
            sanitizer.on_transition(
                99, 0, PageState.UNTOUCHED, PageState.GLOBAL_WRITABLE, False
            )

    def test_directory_sweep_finds_corruption(self):
        numa = FakeNuma()
        sanitizer = ProtocolSanitizer(numa)
        entry = numa.directory.add(3, gframe())
        entry.state = PageState.GLOBAL_WRITABLE
        entry.local_copies[1] = lframe(1)  # GW must have no copies
        with pytest.raises(ProtocolViolation) as exc:
            sanitizer.check_directory()
        assert exc.value.page_id == 3

    def test_round_end_sweep_is_throttled(self):
        numa = FakeNuma()
        sanitizer = ProtocolSanitizer(numa, full_sweep_interval=4)
        entry = numa.directory.add(3, gframe())
        entry.state = PageState.GLOBAL_WRITABLE
        entry.local_copies[1] = lframe(1)
        for round_index in range(3):
            sanitizer.on_round_end(round_index)  # below interval: silent
        with pytest.raises(ProtocolViolation):
            sanitizer.on_round_end(3)


class TestMoveCountCheck:
    def _gw_entry(self, numa, page_id=5):
        entry = numa.directory.add(page_id, gframe())
        entry.state = PageState.GLOBAL_WRITABLE
        return entry

    def test_matching_increment_passes(self):
        numa = FakeNuma()
        sanitizer = ProtocolSanitizer(numa)
        entry = self._gw_entry(numa)
        sanitizer.on_transition(
            5, 0, PageState.UNTOUCHED, PageState.GLOBAL_WRITABLE, False
        )
        entry.move_count += 1
        sanitizer.on_transition(
            5, 1, PageState.GLOBAL_WRITABLE, PageState.GLOBAL_WRITABLE, True
        )

    def test_backwards_count_raises(self):
        numa = FakeNuma()
        sanitizer = ProtocolSanitizer(numa)
        entry = self._gw_entry(numa)
        entry.move_count = 3
        sanitizer.on_transition(
            5, 0, PageState.GLOBAL_WRITABLE, PageState.GLOBAL_WRITABLE, False
        )
        entry.move_count = 1
        with pytest.raises(ProtocolViolation) as exc:
            sanitizer.on_transition(
                5, 0, PageState.GLOBAL_WRITABLE, PageState.GLOBAL_WRITABLE,
                False,
            )
        assert exc.value.check == "move-count-monotonic"

    def test_unannounced_move_raises(self):
        numa = FakeNuma()
        sanitizer = ProtocolSanitizer(numa)
        entry = self._gw_entry(numa)
        sanitizer.on_transition(
            5, 0, PageState.GLOBAL_WRITABLE, PageState.GLOBAL_WRITABLE, False
        )
        entry.move_count += 2  # two moves, one announced
        with pytest.raises(ProtocolViolation):
            sanitizer.on_transition(
                5, 0, PageState.GLOBAL_WRITABLE, PageState.GLOBAL_WRITABLE,
                True,
            )

    def test_freed_page_forgets_history(self):
        numa = FakeNuma()
        sanitizer = ProtocolSanitizer(numa)
        entry = self._gw_entry(numa)
        entry.move_count = 4
        sanitizer.on_transition(
            5, 0, PageState.GLOBAL_WRITABLE, PageState.GLOBAL_WRITABLE, False
        )
        sanitizer.on_page_freed(5)
        numa.directory.remove(5)
        # Reused id with a fresh budget must not trip the monotonic check.
        fresh = self._gw_entry(numa)
        assert fresh.move_count == 0
        sanitizer.on_transition(
            5, 0, PageState.UNTOUCHED, PageState.GLOBAL_WRITABLE, False
        )


class TestPinningCheck:
    def _entry(self, numa, page_id=9, state=PageState.GLOBAL_WRITABLE):
        entry = numa.directory.add(page_id, gframe())
        entry.state = state
        return entry

    def test_pinned_page_must_stay_global(self):
        numa = FakeNuma(MoveThresholdPolicy(threshold=0))
        sanitizer = ProtocolSanitizer(numa)
        entry = self._entry(numa)
        numa.policy._pinned.add(9)
        # First sighting while pinned is fine (the pin binds now)...
        sanitizer.on_transition(
            9, 0, PageState.GLOBAL_WRITABLE, PageState.GLOBAL_WRITABLE, False
        )
        # ...but from then on every transition must land in GW.
        entry.state = PageState.LOCAL_WRITABLE
        entry.owner = 0
        entry.local_copies[0] = lframe(0)
        with pytest.raises(ProtocolViolation) as exc:
            sanitizer.on_transition(
                9, 0, PageState.GLOBAL_WRITABLE, PageState.LOCAL_WRITABLE,
                False,
            )
        assert exc.value.check == "pin-stays-pinned"

    def test_dropped_pin_raises(self):
        numa = FakeNuma(MoveThresholdPolicy(threshold=0))
        sanitizer = ProtocolSanitizer(numa)
        self._entry(numa)
        numa.policy._pinned.add(9)
        sanitizer.on_transition(
            9, 0, PageState.GLOBAL_WRITABLE, PageState.GLOBAL_WRITABLE, False
        )
        numa.policy._pinned.discard(9)
        with pytest.raises(ProtocolViolation, match="no longer pins"):
            sanitizer.on_transition(
                9, 0, PageState.GLOBAL_WRITABLE, PageState.GLOBAL_WRITABLE,
                False,
            )

    def test_reconsidering_policy_is_exempt(self):
        from repro.core.policies.reconsider import ReconsiderPolicy

        numa = FakeNuma(ReconsiderPolicy(threshold=0))
        sanitizer = ProtocolSanitizer(numa)
        entry = self._entry(numa)
        numa.policy._pinned.add(9)
        sanitizer.on_transition(
            9, 0, PageState.GLOBAL_WRITABLE, PageState.GLOBAL_WRITABLE, False
        )
        numa.policy._pinned.discard(9)
        entry.state = PageState.LOCAL_WRITABLE
        entry.owner = 0
        entry.local_copies[0] = lframe(0)
        # No raise: this policy declares reconsiders_pinning.
        sanitizer.on_transition(
            9, 0, PageState.GLOBAL_WRITABLE, PageState.LOCAL_WRITABLE, False
        )


class TestTLBCoherenceSweep:
    """PR 4: cached translations must match live MMU/directory state."""

    def _cached_rig(self):
        from repro.machine.protection import PROT_READ_WRITE
        from repro.vm.vm_object import shared_object
        from tests.conftest import make_rig

        rig = make_rig()
        region = rig.space.map_object(shared_object("data", 2))
        vpage = region.vpage_at(0)
        page = rig.pool.resident_or_allocate(region.vm_object, 0)
        rig.pmap.pmap_enter(
            vpage, page, PROT_READ_WRITE, PROT_READ_WRITE, cpu=0
        )
        cpu = rig.machine.cpu(0)
        live = cpu.mmu.lookup(vpage)
        cpu.tlb.fill(
            vpage,
            live.frame,
            live.protection,
            live.frame.location_for(0),
            rig.machine.timing.fetch_us(live.frame.location_for(0)),
            rig.machine.timing.store_us(live.frame.location_for(0)),
        )
        return rig, vpage, cpu

    def test_coherent_state_passes(self):
        rig, _, _ = self._cached_rig()
        sanitizer = ProtocolSanitizer(rig.numa)
        sanitizer.check_directory()
        assert sanitizer.tlb_checks == 1

    def test_tlb_sweep_has_its_own_counter(self):
        """`checks` must not move, or chaos baselines stop being stable."""
        rig, _, _ = self._cached_rig()
        sanitizer = ProtocolSanitizer(rig.numa)
        before = sanitizer.checks
        sanitizer.check_tlbs()
        assert sanitizer.checks == before
        assert sanitizer.tlb_checks == 1

    def test_entry_surviving_mmu_remove_raises(self):
        rig, vpage, cpu = self._cached_rig()
        sanitizer = ProtocolSanitizer(rig.numa)
        cpu.mmu.remove(vpage)  # bypasses the CPU invalidation funnel
        with pytest.raises(ProtocolViolation) as exc:
            sanitizer.check_tlbs()
        assert exc.value.check == "tlb-coherence"
        assert "missed shootdown" in str(exc.value)

    def test_stale_protection_raises(self):
        from repro.machine.protection import PROT_READ

        rig, vpage, cpu = self._cached_rig()
        sanitizer = ProtocolSanitizer(rig.numa)
        cpu.mmu.protect(vpage, PROT_READ)  # again, around the funnel
        with pytest.raises(ProtocolViolation) as exc:
            sanitizer.check_tlbs()
        assert exc.value.check == "tlb-coherence"
        assert "stale" in str(exc.value)

    def test_wrong_latency_class_raises(self):
        from repro.machine.timing import MemoryLocation

        rig, vpage, cpu = self._cached_rig()
        live = cpu.mmu.lookup(vpage)
        real = live.frame.location_for(0)
        wrong = (
            MemoryLocation.GLOBAL
            if real is MemoryLocation.LOCAL
            else MemoryLocation.LOCAL
        )
        cpu.tlb.invalidate(vpage, acting_cpu=0)
        cpu.tlb.fill(  # poison: price the frame as if it lived elsewhere
            vpage,
            live.frame,
            live.protection,
            wrong,
            rig.machine.timing.fetch_us(wrong),
            rig.machine.timing.store_us(wrong),
        )
        sanitizer = ProtocolSanitizer(rig.numa)
        with pytest.raises(ProtocolViolation) as exc:
            sanitizer.check_tlbs()
        assert exc.value.check == "tlb-coherence"
        assert "latency class" in str(exc.value)


class TestLockHooks:
    def test_abba_through_the_sanitizer_raises(self):
        sanitizer = ProtocolSanitizer(FakeNuma())
        sanitizer.on_lock_acquire("t1", 10)
        sanitizer.on_lock_acquire("t1", 20)
        sanitizer.on_lock_release("t1", 20)
        sanitizer.on_lock_release("t1", 10)
        sanitizer.on_lock_acquire("t2", 20)
        with pytest.raises(ProtocolViolation) as exc:
            sanitizer.on_lock_acquire("t2", 10)
        assert exc.value.check == "lock-order"
        # The event trail includes the lock history for debugging.
        assert any(
            event["t"] == "lock_acquire" for event in exc.value.events
        )

    def test_violation_trail_formats(self):
        sanitizer = ProtocolSanitizer(FakeNuma())
        sanitizer.on_lock_acquire("t1", 1)
        sanitizer.on_lock_acquire("t1", 2)
        sanitizer.on_lock_release("t1", 2)
        sanitizer.on_lock_release("t1", 1)
        sanitizer.on_lock_acquire("t2", 2)
        try:
            sanitizer.on_lock_acquire("t2", 1)
        except ProtocolViolation as violation:
            text = violation.format_trail()
            assert "lock_acquire" in text
        else:  # pragma: no cover
            pytest.fail("expected a lock-order violation")
