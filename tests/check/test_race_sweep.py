"""Acceptance sweep: the race detector rides every chaos profile clean.

The PR's dynamic-layer acceptance criteria: with ``REPRO_SANITIZE=1``
the detector attaches alongside the protocol sanitizer, a clean tree
produces zero race reports under *every* fault profile, and for a
fixed workload/profile/seed the detector's full output is
byte-identical run to run (the engine is deterministic, so the
detector must be too).
"""

import pytest

from repro.check.races import RaceDetector
from repro.faults.chaos import run_chaos
from repro.workloads.parmult import ParMult

PROFILES = ("none", "transient", "frame-loss", "storm")


def _sweep(profile, seed=7, detector=None, **kwargs):
    return run_chaos(
        ParMult.small(),
        profile,
        seed=seed,
        n_processors=4,
        detector=detector,
        **kwargs,
    )


class TestCleanTreeSweep:
    @pytest.mark.parametrize("profile", PROFILES)
    def test_sanitized_run_reports_no_races(self, profile, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        # The sanitizer wiring attaches a raise-on-race detector: any
        # candidate race would raise a ProtocolViolation out of here.
        report = _sweep(profile)
        assert report.sanitized
        assert report.races["races_reported"] == 0
        # The detector actually watched the run, it didn't just idle.
        # (ParMult takes no spin locks, so only the reference and
        # transition streams carry traffic here.)
        assert report.races["races_accesses"] > 0

    @pytest.mark.parametrize("profile", PROFILES)
    def test_collecting_detector_finds_nothing(self, profile):
        detector = RaceDetector(raise_on_race=False)
        _sweep(profile, detector=detector, sanitize=False)
        assert detector.reports == []
        assert detector.ok


class TestDeterministicDetectorOutput:
    @pytest.mark.parametrize("profile", PROFILES)
    def test_byte_identical_per_seed(self, profile, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        first = _sweep(profile)
        second = _sweep(profile)
        assert first.races == second.races
        assert first.to_json() == second.to_json()

    def test_detector_records_are_identical_too(self):
        outputs = []
        for _ in range(2):
            detector = RaceDetector(raise_on_race=False)
            _sweep("storm", detector=detector, sanitize=False)
            outputs.append(
                (detector.counters(), detector.as_records(),
                 detector.format())
            )
        assert outputs[0] == outputs[1]

    def test_report_json_carries_race_counters(self):
        import json

        report = _sweep("transient", detector=RaceDetector(
            raise_on_race=False
        ), sanitize=False)
        decoded = json.loads(report.to_json())
        assert decoded["races"]["races_reported"] == 0
        assert decoded["races"]["races_accesses"] > 0
