"""Static guard inference: site collection, classification, discipline."""

import ast

from repro.check.guards import (
    GUARD_FUNNEL,
    GUARD_MONITOR,
    GUARD_NONE,
    GUARD_SPINLOCK,
    GuardModel,
    MutationSite,
    collect_sites,
    infer_guards,
)


def _sites(source: str, relpath: str):
    return collect_sites(ast.parse(source), relpath)


class TestSiteCollection:
    def test_monitor_method_assignment(self):
        source = (
            "class DirectoryEntry:\n"
            "    def bump(self):\n"
            "        self.move_count += 1\n"
        )
        sites = _sites(source, "core/directory.py")
        assert len(sites) == 1
        site = sites[0]
        assert site.field == "move_count"
        assert site.kind == "augassign"
        assert site.guard == GUARD_MONITOR
        assert site.function == "DirectoryEntry.bump"

    def test_funnel_module_assignment(self):
        source = "def apply(entry):\n    entry.state = 1\n"
        (site,) = _sites(source, "core/actions.py")
        assert site.guard == GUARD_FUNNEL

    def test_unguarded_entry_write_elsewhere(self):
        source = "def rogue(entry):\n    entry.state = 1\n"
        (site,) = _sites(source, "sim/engine.py")
        assert site.guard == GUARD_NONE
        assert site.field == "state"

    def test_entry_gating_skips_generic_receivers(self):
        # `state` is a common attribute name; outside the protocol
        # modules it only counts when the receiver looks like an entry.
        source = "def run(thread):\n    thread.state = 1\n"
        assert _sites(source, "sim/engine.py") == []

    def test_non_gated_field_counts_anywhere(self):
        source = "def f(self):\n    self.local_copies.add(0)\n"
        (site,) = _sites(source, "sim/engine.py")
        assert site.field == "local_copies"
        assert site.kind == "add"
        assert site.guard == GUARD_NONE

    def test_spinlock_span_covers_mutation(self):
        source = (
            "def f(entry, lock):\n"
            "    lock.acquire()\n"
            "    entry.owner = 2\n"
            "    lock.release()\n"
        )
        (site,) = _sites(source, "vm/pmap.py")
        assert site.guard == GUARD_SPINLOCK

    def test_mutation_outside_spinlock_span_is_unguarded(self):
        source = (
            "def f(entry, lock):\n"
            "    lock.acquire()\n"
            "    lock.release()\n"
            "    entry.owner = 2\n"
        )
        (site,) = _sites(source, "vm/pmap.py")
        assert site.guard == GUARD_NONE

    def test_item_assign_and_delete_kinds(self):
        source = (
            "class MMU:\n"
            "    def enter(self, v, e):\n"
            "        self._by_vpage[v] = e\n"
            "    def drop(self, f):\n"
            "        del self._by_frame[f]\n"
        )
        sites = _sites(source, "machine/mmu.py")
        kinds = {(s.field, s.kind) for s in sites}
        assert ("_by_vpage", "item-assign") in kinds
        assert ("_by_frame", "delete") in kinds
        assert all(s.guard == GUARD_MONITOR for s in sites)


class TestGuardModel:
    def _site(self, field, guard, line=1):
        return MutationSite(
            field=field,
            path="x.py",
            line=line,
            col=0,
            function="f",
            guard=guard,
            kind="assign",
        )

    def test_discipline_is_majority_vote(self):
        model = GuardModel(
            sites=[
                self._site("state", GUARD_FUNNEL, 1),
                self._site("state", GUARD_FUNNEL, 2),
                self._site("state", GUARD_MONITOR, 3),
            ]
        )
        assert model.discipline() == {"state": GUARD_FUNNEL}

    def test_unguarded_sites_do_not_vote(self):
        model = GuardModel(
            sites=[
                self._site("owner", GUARD_NONE, 1),
                self._site("owner", GUARD_NONE, 2),
                self._site("owner", GUARD_MONITOR, 3),
            ]
        )
        assert model.discipline() == {"owner": GUARD_MONITOR}
        assert len(model.deviants()) == 2
        assert not model.ok

    def test_tie_breaks_toward_stronger_guard(self):
        model = GuardModel(
            sites=[
                self._site("state", GUARD_MONITOR, 1),
                self._site("state", GUARD_FUNNEL, 2),
            ]
        )
        assert model.discipline() == {"state": GUARD_FUNNEL}

    def test_records_include_summary(self):
        model = GuardModel(
            sites=[self._site("state", GUARD_FUNNEL)], files_checked=1
        )
        records = model.as_records()
        assert records[-1]["t"] == "guard_summary"
        assert records[-1]["unguarded"] == 0
        assert records[0]["t"] == "guard_site"


class TestPackageInference:
    def test_clean_tree_has_no_unguarded_sites(self):
        model = infer_guards()
        assert model.ok, model.format()
        assert model.files_checked > 50

    def test_inferred_discipline_matches_the_design(self):
        discipline = infer_guards().discipline()
        # Directory-entry state flows through the transition funnel;
        # the MMU/TLB tables are monitor-private to their classes.
        assert discipline["state"] == GUARD_FUNNEL
        assert discipline["owner"] == GUARD_FUNNEL
        assert discipline["local_copies"] == GUARD_FUNNEL
        assert discipline["_by_vpage"] == GUARD_MONITOR
        assert discipline["_entries"] == GUARD_MONITOR

    def test_fixture_plants_are_excluded_from_the_default_scan(self):
        model = infer_guards()
        assert not any(
            s.path == "check/fixtures.py" for s in model.sites
        )

    def test_directory_declaration_matches_the_field_map(self):
        # core/directory.py declares its own guarded fields; the
        # detector's SHARED_FIELDS map must track every one of them.
        from repro.check.guards import SHARED_FIELDS
        from repro.core.directory import GUARDED_FIELDS

        for fname in GUARDED_FIELDS:
            assert fname in SHARED_FIELDS, fname
            assert "core/directory.py" in SHARED_FIELDS[fname], fname
