"""The repo-specific AST lint: rules, suppressions, and repo cleanliness."""

import textwrap

from repro.check.lint import (
    DEFAULT_RULES,
    lint_paths,
    lint_source,
)


def lint(source: str, relpath: str):
    violations, suppressed = lint_source(
        textwrap.dedent(source), relpath, DEFAULT_RULES
    )
    return violations, suppressed


def rule_ids(violations):
    return [v.rule_id for v in violations]


class TestNoWallClock:
    def test_import_and_call_flagged_in_sim(self):
        violations, _ = lint(
            """
            from time import perf_counter

            def f():
                return perf_counter()
            """,
            "sim/clock_abuse.py",
        )
        assert rule_ids(violations) == ["RN001", "RN001"]

    def test_attribute_read_flagged_in_core(self):
        violations, _ = lint(
            """
            import time

            def f():
                return time.time()
            """,
            "core/clock_abuse.py",
        )
        assert rule_ids(violations) == ["RN001"]

    def test_datetime_now_flagged_in_vm(self):
        violations, _ = lint(
            """
            import datetime

            def f():
                return datetime.now()
            """,
            "vm/clock_abuse.py",
        )
        assert rule_ids(violations) == ["RN001"]

    def test_profiling_module_is_allowlisted(self):
        violations, _ = lint(
            "from time import perf_counter\n", "obs/profiling.py"
        )
        assert violations == []

    def test_outside_simulated_dirs_is_fine(self):
        violations, _ = lint(
            "from time import perf_counter\n", "analysis/report.py"
        )
        assert violations == []

    def test_simulated_time_names_are_fine(self):
        # The engine's own now_us() etc. are not wall-clock reads.
        violations, _ = lint(
            """
            def f(engine):
                return engine.now_us()
            """,
            "sim/fine.py",
        )
        assert violations == []


class TestStateAssign:
    BAD = """
    from repro.core.state import PageState

    def f(entry):
        entry.state = PageState.READ_ONLY
    """

    def test_assignment_outside_funnel_flagged(self):
        violations, _ = lint(self.BAD, "vm/pmap.py")
        assert rule_ids(violations) == ["RN002"]

    def test_funnel_modules_are_allowed(self):
        # numa_manager may assign, but RN005 then demands an emit; this
        # function has both, so it is fully clean.
        violations, _ = lint(
            """
            from repro.core.state import PageState

            def _transition(self, entry):
                entry.state = PageState.READ_ONLY
                self._bus.emit_transition(entry.page_id)
            """,
            "core/numa_manager.py",
        )
        assert violations == []

    def test_comparison_is_not_assignment(self):
        violations, _ = lint(
            """
            from repro.core.state import PageState

            def f(entry):
                return entry.state is PageState.READ_ONLY
            """,
            "vm/pmap.py",
        )
        assert violations == []


class TestBareExcept:
    def test_bare_except_flagged(self):
        violations, _ = lint(
            """
            def f():
                try:
                    pass
                except:
                    pass
            """,
            "analysis/anything.py",
        )
        assert rule_ids(violations) == ["RN003"]

    def test_typed_except_is_fine(self):
        violations, _ = lint(
            """
            def f():
                try:
                    pass
                except ValueError:
                    pass
            """,
            "analysis/anything.py",
        )
        assert violations == []


class TestMutableDefault:
    def test_list_literal_flagged(self):
        violations, _ = lint(
            "def f(items=[]):\n    pass\n", "workloads/x.py"
        )
        assert rule_ids(violations) == ["RN004"]

    def test_dict_call_flagged(self):
        violations, _ = lint(
            "def f(*, table=dict()):\n    pass\n", "workloads/x.py"
        )
        assert rule_ids(violations) == ["RN004"]

    def test_none_default_is_fine(self):
        violations, _ = lint(
            "def f(items=None):\n    pass\n", "workloads/x.py"
        )
        assert violations == []


class TestTransitionEvent:
    def test_silent_state_assign_in_funnel_flagged(self):
        violations, _ = lint(
            """
            from repro.core.state import PageState

            def sneak(entry):
                entry.state = PageState.READ_ONLY
            """,
            "core/numa_manager.py",
        )
        assert rule_ids(violations) == ["RN005"]

    def test_rule_only_applies_to_funnel_modules(self):
        # Elsewhere RN002 owns the problem; RN005 must not double-report.
        violations, _ = lint(
            """
            from repro.core.state import PageState

            def sneak(entry):
                entry.state = PageState.READ_ONLY
            """,
            "vm/pmap.py",
        )
        assert rule_ids(violations) == ["RN002"]


class TestSeededRandom:
    def test_unseeded_random_flagged(self):
        violations, _ = lint(
            """
            import random

            def f():
                return random.Random()
            """,
            "faults/plan.py",
        )
        assert rule_ids(violations) == ["RN006"]

    def test_seeded_random_is_fine(self):
        violations, _ = lint(
            """
            import random

            def f(seed):
                return random.Random(seed)
            """,
            "faults/plan.py",
        )
        assert violations == []

    def test_module_level_draw_flagged(self):
        violations, _ = lint(
            """
            import random

            def f():
                return random.choice([1, 2, 3]) + random.random()
            """,
            "sim/engine.py",
        )
        assert rule_ids(violations) == ["RN006", "RN006"]

    def test_from_import_of_draw_flagged(self):
        violations, _ = lint(
            "from random import randint, shuffle\n", "core/policy.py"
        )
        assert rule_ids(violations) == ["RN006", "RN006"]

    def test_from_import_of_random_class_is_fine(self):
        violations, _ = lint(
            """
            from random import Random

            def f(seed):
                return Random(seed)
            """,
            "faults/plan.py",
        )
        assert violations == []

    def test_suppression_comment_honored(self):
        violations, suppressed = lint(
            """
            import random

            def f():
                return random.Random()  # repro-lint: allow[seeded-random]
            """,
            "faults/plan.py",
        )
        assert violations == []
        assert suppressed == 1


class TestMMUMutation:
    def test_direct_mmu_call_flagged_outside_funnel(self):
        violations, _ = lint(
            """
            def sneak(machine, vpage, frame, prot):
                machine.cpu(0).mmu.enter(vpage, frame, prot)
            """,
            "core/numa_manager.py",
        )
        assert rule_ids(violations) == ["RN007"]

    def test_every_mutator_name_is_flagged(self):
        violations, _ = lint(
            """
            def sneak(mmu, vpage, frame, prot):
                mmu.enter(vpage, frame, prot)
                mmu.remove(vpage)
                mmu.protect(vpage, prot)
                mmu.remove_frame(frame)
            """,
            "sim/engine.py",
        )
        assert rule_ids(violations) == ["RN007"] * 4

    def test_private_attribute_spelling_is_flagged(self):
        violations, _ = lint(
            """
            def sneak(self, vpage):
                self._mmu.remove(vpage)
            """,
            "vm/vm_object.py",
        )
        assert rule_ids(violations) == ["RN007"]

    def test_read_only_mmu_calls_are_fine(self):
        violations, _ = lint(
            """
            def peek(mmu, vpage, frame):
                return mmu.lookup(vpage), mmu.vpage_of(frame)
            """,
            "core/numa_manager.py",
        )
        assert violations == []

    def test_funnel_layers_are_allowlisted(self):
        source = """
        def funnel(self, vpage, frame, prot):
            self._mmu.enter(vpage, frame, prot)
        """
        for relpath in ("machine/cpu.py", "vm/pmap.py"):
            violations, _ = lint(source, relpath)
            assert violations == [], relpath

    def test_suppression_comment_honored(self):
        violations, suppressed = lint(
            """
            def sneak(mmu, vpage):
                mmu.remove(vpage)  # repro-lint: allow[mmu-mutation]
            """,
            "core/numa_manager.py",
        )
        assert violations == []
        assert suppressed == 1


class TestSuppressions:
    def test_line_suppression_by_name(self):
        violations, suppressed = lint(
            """
            def f():
                try:
                    pass
                except:  # repro-lint: allow[bare-except]
                    pass
            """,
            "analysis/x.py",
        )
        assert violations == []
        assert suppressed == 1

    def test_line_suppression_by_id(self):
        violations, suppressed = lint(
            "def f(items=[]):  # repro-lint: allow[RN004]\n    pass\n",
            "workloads/x.py",
        )
        assert violations == []
        assert suppressed == 1

    def test_file_wide_suppression(self):
        violations, suppressed = lint(
            """
            # repro-lint: allow-file[no-wall-clock]
            from time import perf_counter

            def f():
                return perf_counter()
            """,
            "sim/x.py",
        )
        assert violations == []
        assert suppressed == 2

    def test_suppression_is_rule_specific(self):
        violations, suppressed = lint(
            """
            def f(items=[]):  # repro-lint: allow[bare-except]
                pass
            """,
            "workloads/x.py",
        )
        assert rule_ids(violations) == ["RN004"]
        assert suppressed == 0


class TestRepoIsClean:
    def test_whole_package_lints_clean(self):
        """The acceptance gate: repro-numa lint exits 0 on this repo."""
        report = lint_paths()
        assert report.violations == [], report.format()
        assert report.exit_code == 0
        assert report.files_checked > 50

    def test_violation_format_is_clickable(self):
        violations, _ = lint(
            "def f(items=[]):\n    pass\n", "workloads/x.py"
        )
        line = violations[0].format()
        assert line.startswith("workloads/x.py:1:")
        assert "RN004[mutable-default]" in line

    def test_records_round_trip_summary(self):
        report = lint_paths()
        records = report.as_records()
        assert records[-1]["t"] == "lint_summary"
        assert records[-1]["violations"] == 0
