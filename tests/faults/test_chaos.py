"""The chaos harness: sanitized runs, determinism, recovery reports.

These are the PR's acceptance tests: a tier-1 workload runs to
completion under the ``transient`` and ``frame-loss`` profiles with the
protocol sanitizer attached (zero :class:`ProtocolViolation`s), and two
runs with the same seed produce byte-identical recovery summaries.
"""

import pytest

from repro.faults.chaos import run_chaos
from repro.workloads.parmult import ParMult


def small_chaos(profile, seed=7, **kwargs):
    return run_chaos(
        ParMult.small(), profile, seed=seed, n_processors=4, **kwargs
    )


class TestDeterminism:
    def test_same_seed_byte_identical_reports(self):
        first = small_chaos("transient")
        second = small_chaos("transient")
        assert first.as_dict() == second.as_dict()
        assert first.to_json() == second.to_json()

    def test_storm_profile_is_deterministic_too(self):
        first = small_chaos("storm", seed=11)
        second = small_chaos("storm", seed=11)
        assert first.to_json() == second.to_json()

    def test_different_seeds_change_the_fault_sequence(self):
        first = small_chaos("transient", seed=1)
        second = small_chaos("transient", seed=2)
        assert first.faults != second.faults


class TestSanitizedRuns:
    """REPRO_SANITIZE=1 + fault injection: recovery must stay sound."""

    @pytest.mark.parametrize("profile", ["transient", "frame-loss"])
    def test_profile_runs_clean_under_sanitizer(self, profile, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        # Any ProtocolViolation a recovery provokes raises out of here.
        report = small_chaos(profile)
        assert report.sanitized
        assert report.rounds > 0

    @pytest.mark.parametrize("profile", ["transient", "frame-loss"])
    def test_sanitized_final_stats_are_reproducible(
        self, profile, monkeypatch
    ):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        first = small_chaos(profile)
        second = small_chaos(profile)
        assert first.numa == second.numa
        assert first.faults == second.faults
        assert first.as_dict() == second.as_dict()

    def test_harness_attaches_sanitizer_by_default(self):
        """Chaos runs sanitize even without REPRO_SANITIZE=1."""
        report = small_chaos("transient")
        assert report.sanitized
        assert report.sanitizer_checks > 0


class TestRecovery:
    def test_transient_profile_injects_and_recovers(self):
        report = small_chaos("transient")
        assert report.faults["injected_transfer_fail"] > 0
        # Every injected transfer failure was absorbed: retried to
        # success or degraded to pinned-global, never raised.
        assert (
            report.faults["retry_successes"]
            + report.faults["degradations"]
            > 0
        )
        assert report.offline_frames == 0

    def test_frame_loss_offlines_frames_and_completes(self):
        report = small_chaos("frame-loss")
        assert report.faults["injected_frame_fail"] > 0
        assert report.offline_frames == report.faults["frames_offlined"]
        assert report.numa["frames_offlined"] == report.offline_frames
        assert report.rounds > 0

    def test_none_profile_injects_nothing(self):
        report = small_chaos("none")
        injected = {
            key: value
            for key, value in report.faults.items()
            if key.startswith("injected_")
        }
        assert all(value == 0 for value in injected.values())
        assert report.degraded_pages == 0
        assert report.offline_frames == 0
        assert report.faults["injected_delay_us"] == 0.0

    def test_none_profile_matches_an_uninjected_run(self):
        """The fault machinery at rest does not perturb the protocol."""
        from repro.core.policies import MoveThresholdPolicy
        from repro.sim.harness import build_simulation

        baseline = build_simulation(
            ParMult.small(), MoveThresholdPolicy(), n_processors=4
        )
        baseline.engine.run(baseline.threads)
        report = small_chaos("none", sanitize=False)
        assert report.numa == baseline.numa.stats.as_dict()

    def test_report_json_shape(self):
        import json

        report = small_chaos("transient")
        decoded = json.loads(report.to_json())
        assert decoded["workload"] == "ParMult"
        assert decoded["profile"] == "transient"
        assert decoded["seed"] == 7
        assert decoded["n_processors"] == 4
        assert "faults" in decoded and "numa" in decoded
        assert "tlb" in decoded


class TestTLBCounters:
    def test_report_carries_the_full_counter_set(self):
        report = small_chaos("none")
        assert set(report.tlb) == {
            "hits", "misses", "fills", "evictions", "invalidations",
            "shootdowns", "flushes",
        }
        # The single shared counter page ping-pongs between writers, so
        # fills land but almost never survive to a hit in this workload.
        assert report.tlb["fills"] > 0

    def test_frame_loss_recovery_shoots_down_tlbs(self):
        """Offlining a frame must invalidate from another CPU's context."""
        report = small_chaos("frame-loss")
        assert report.faults["injected_frame_fail"] > 0
        assert report.tlb["shootdowns"] > 0

    def test_tlb_counters_are_deterministic(self):
        assert small_chaos("storm").tlb == small_chaos("storm").tlb
