"""Fault profiles and the seeded, simulated-time fault schedule."""

import pytest

from repro.errors import ConfigurationError
from repro.faults.plan import (
    PROFILES,
    FaultPlan,
    FaultProfile,
    get_profile,
)


class TestProfiles:
    def test_named_profiles_exist(self):
        assert set(PROFILES) == {"none", "transient", "frame-loss", "storm"}

    def test_lookup_is_case_insensitive(self):
        assert get_profile("TRANSIENT") is PROFILES["transient"]
        assert get_profile("  Frame-Loss ") is PROFILES["frame-loss"]

    def test_unknown_profile_is_a_configuration_error(self):
        with pytest.raises(ConfigurationError, match="unknown fault profile"):
            get_profile("tornado")

    def test_all_shipped_profiles_validate(self):
        for profile in PROFILES.values():
            profile.validate()

    def test_rate_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError, match="transfer_fail_rate"):
            FaultProfile(name="bad", transfer_fail_rate=1.5).validate()

    def test_negative_interval_rejected(self):
        with pytest.raises(ConfigurationError, match="cannot be negative"):
            FaultProfile(name="bad", frame_fail_interval_us=-1.0).validate()

    def test_none_profile_is_inert(self):
        plan = FaultPlan(PROFILES["none"], seed=3)
        assert not plan.transfer_fails()
        assert plan.message_delay() == 0.0
        assert not plan.frame_failure_due(1e9)
        assert not plan.pressure_due(1e9)
        assert not plan.wants_pump


class TestDeterminism:
    def test_same_seed_same_transfer_sequence(self):
        profile = PROFILES["transient"]
        a = FaultPlan(profile, seed=42)
        b = FaultPlan(profile, seed=42)
        assert [a.transfer_fails() for _ in range(200)] == [
            b.transfer_fails() for _ in range(200)
        ]

    def test_different_seeds_diverge(self):
        profile = PROFILES["storm"]
        a = FaultPlan(profile, seed=1)
        b = FaultPlan(profile, seed=2)
        assert [a.transfer_fails() for _ in range(200)] != [
            b.transfer_fails() for _ in range(200)
        ]

    def test_same_seed_same_message_delays(self):
        profile = PROFILES["storm"]
        a = FaultPlan(profile, seed=9)
        b = FaultPlan(profile, seed=9)
        assert [a.message_delay() for _ in range(200)] == [
            b.message_delay() for _ in range(200)
        ]

    def test_choose_is_deterministic(self):
        profile = PROFILES["transient"]
        a = FaultPlan(profile, seed=5)
        b = FaultPlan(profile, seed=5)
        items = list(range(10))
        assert [a.choose(items) for _ in range(50)] == [
            b.choose(items) for _ in range(50)
        ]

    def test_choose_from_nothing_is_an_error(self):
        plan = FaultPlan(PROFILES["transient"], seed=0)
        with pytest.raises(ConfigurationError):
            plan.choose([])


class TestSchedule:
    def test_frame_failures_respect_the_cap(self):
        profile = FaultProfile(
            name="t", frame_fail_interval_us=100.0, max_frame_failures=2
        )
        plan = FaultPlan(profile, seed=7)
        fired = sum(
            plan.frame_failure_due(now) for now in range(0, 100_000, 10)
        )
        assert fired == 2
        assert plan.frame_failures_fired == 2

    def test_cap_exhaustion_clears_wants_pump(self):
        profile = FaultProfile(
            name="t", frame_fail_interval_us=100.0, max_frame_failures=1
        )
        plan = FaultPlan(profile, seed=7)
        assert plan.wants_pump
        # First deadline lands in [50, 150)us, so this consumes the one
        # allowed failure; the next check hits the cap and clears it.
        assert plan.frame_failure_due(1_000.0)
        assert not plan.frame_failure_due(1e9)
        assert not plan.wants_pump

    def test_frame_failure_not_due_before_deadline(self):
        profile = FaultProfile(
            name="t", frame_fail_interval_us=1_000.0, max_frame_failures=8
        )
        plan = FaultPlan(profile, seed=7)
        # Deadlines are jittered in [0.5, 1.5) of the mean interval.
        assert not plan.frame_failure_due(400.0)

    def test_pressure_redraws_after_firing(self):
        profile = FaultProfile(
            name="t", pressure_interval_us=100.0, pressure_duration_us=50.0
        )
        plan = FaultPlan(profile, seed=7)
        assert plan.pressure_due(1_000.0)
        assert plan.wants_pump  # next spike already scheduled
