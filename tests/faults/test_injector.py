"""The injector, the retry envelope, and the protocol recovery paths."""

import pytest

from repro.core.state import AccessKind, PageState
from repro.faults.injector import (
    FaultInjector,
    FaultStats,
    RetryPolicy,
)
from repro.faults.plan import FaultPlan, FaultProfile
from repro.obs.events import EventBus
from repro.vm.vm_object import shared_object
from tests.conftest import make_rig


class ScriptedPlan(FaultPlan):
    """A plan whose transfer outcomes are fixed in advance.

    ``outcomes`` lists whether each successive transfer *attempt* fails;
    once exhausted, every further attempt succeeds.  The profile carries
    a nonzero ``transfer_fail_rate`` because the manager skips the probe
    entirely for zero-rate profiles (the cached gate in its ``injector``
    setter); the override below then decides the actual outcomes.
    """

    def __init__(self, outcomes):
        super().__init__(
            FaultProfile(name="scripted", transfer_fail_rate=1.0), seed=0
        )
        self._outcomes = list(outcomes)

    def transfer_fails(self):
        if self._outcomes:
            return self._outcomes.pop(0)
        return False


def make_chaos_rig(plan, retry=None):
    """A protocol rig with a fault injector wired into the manager."""
    rig = make_rig()
    injector = FaultInjector(plan, retry)
    injector.bind(rig.machine, EventBus())
    rig.numa.injector = injector
    return rig, injector


def map_shared(rig, pages=4):
    return rig.space.map_object(shared_object("data", pages))


def entry_for(rig, region, offset=0):
    page = region.vm_object.resident_page(offset)
    assert page is not None
    return rig.numa.directory.get(page.page_id)


class TestRetryPolicy:
    def test_backoff_doubles_then_caps(self):
        policy = RetryPolicy(
            max_attempts=6, backoff_base_us=50.0, backoff_cap_us=400.0
        )
        assert [policy.backoff_us(n) for n in range(1, 6)] == [
            50.0,
            100.0,
            200.0,
            400.0,
            400.0,
        ]

    def test_stats_dict_covers_every_counter(self):
        flat = FaultStats().as_dict()
        assert set(flat) == {
            "injected_transfer_fail",
            "injected_frame_fail",
            "injected_message_delay",
            "injected_pressure_spike",
            "transfer_retries",
            "retry_successes",
            "degradations",
            "pages_pinned_by_fallback",
            "frames_offlined",
            "pages_refaulted",
            "pressure_fallbacks",
            "message_delays",
            "injected_delay_us",
        }


class TestRetryEnvelope:
    def test_transient_failures_are_retried_to_success(self):
        rig, injector = make_chaos_rig(ScriptedPlan([True, True]))
        region = map_shared(rig)
        rig.faults.handle(0, region.vpage_at(0), AccessKind.WRITE)
        system_before = rig.machine.cpu(1).system_time_us
        rig.faults.handle(1, region.vpage_at(0), AccessKind.WRITE)
        assert injector.stats.transfer_retries == 2
        assert injector.stats.retry_successes == 1
        assert injector.stats.degradations == 0
        # Capped exponential backoff charged to simulated system time.
        charged = rig.machine.cpu(1).system_time_us - system_before
        assert charged >= 50.0 + 100.0

    def test_backoff_lands_on_the_acting_cpu(self):
        def run(outcomes):
            rig, _ = make_chaos_rig(ScriptedPlan(outcomes))
            region = map_shared(rig)
            rig.faults.handle(0, region.vpage_at(0), AccessKind.WRITE)
            rig.faults.handle(1, region.vpage_at(0), AccessKind.WRITE)
            return (
                rig.machine.cpu(0).system_time_us,
                rig.machine.cpu(1).system_time_us,
            )

        clean = run([])
        faulty = run([True])
        assert faulty[0] == clean[0]  # the owner pays nothing extra
        assert faulty[1] == clean[1] + 50.0  # one base backoff on cpu 1

    def test_no_injector_means_no_envelope_cost(self):
        rig = make_rig()
        assert rig.numa.transfer_envelope(page_id=0, cpu=0) is True
        assert rig.numa.stats.transfer_retries == 0


class TestDegradation:
    def always_failing_rig(self):
        plan = FaultPlan(
            FaultProfile(name="always", transfer_fail_rate=1.0), seed=0
        )
        return make_chaos_rig(plan)

    def test_exhausted_retries_pin_the_page_global(self):
        rig, injector = self.always_failing_rig()
        region = map_shared(rig)
        rig.faults.handle(0, region.vpage_at(0), AccessKind.WRITE)
        rig.faults.handle(1, region.vpage_at(0), AccessKind.WRITE)
        entry = entry_for(rig, region)
        assert entry.state is PageState.GLOBAL_WRITABLE
        assert entry.local_copies == {}
        assert entry.page_id in rig.numa.degraded_pages
        assert injector.stats.degradations >= 1
        assert injector.stats.pages_pinned_by_fallback >= 1
        assert rig.numa.stats.degraded_pins == 1

    def test_dirty_copy_synced_before_degrading(self):
        """The slow writeback path runs, so no data is lost."""
        rig, _ = self.always_failing_rig()
        region = map_shared(rig)
        rig.faults.handle(0, region.vpage_at(0), AccessKind.WRITE)
        syncs_before = rig.numa.stats.syncs
        rig.faults.handle(1, region.vpage_at(0), AccessKind.WRITE)
        assert rig.numa.stats.syncs == syncs_before + 1

    def test_degraded_page_stays_global(self):
        """Later faults on a degraded page never try to go local again."""
        rig, injector = self.always_failing_rig()
        region = map_shared(rig)
        rig.faults.handle(0, region.vpage_at(0), AccessKind.WRITE)
        rig.faults.handle(1, region.vpage_at(0), AccessKind.WRITE)
        degradations = injector.stats.degradations
        for cpu in range(4):
            rig.faults.handle(cpu, region.vpage_at(0), AccessKind.WRITE)
            rig.faults.handle(cpu, region.vpage_at(0), AccessKind.READ)
        entry = entry_for(rig, region)
        assert entry.state is PageState.GLOBAL_WRITABLE
        assert injector.stats.degradations == degradations

    def test_freeing_the_page_clears_the_degraded_pin(self):
        rig, _ = self.always_failing_rig()
        region = map_shared(rig)
        rig.faults.handle(0, region.vpage_at(0), AccessKind.WRITE)
        rig.faults.handle(1, region.vpage_at(0), AccessKind.WRITE)
        page = region.vm_object.resident_page(0)
        assert page.page_id in rig.numa.degraded_pages
        rig.pool.free(page, cpu=0)
        assert page.page_id not in rig.numa.degraded_pages


class TestFrameFailure:
    def test_resident_page_invalidated_and_frame_retired(self):
        rig = make_rig()
        region = map_shared(rig)
        rig.faults.handle(0, region.vpage_at(0), AccessKind.WRITE)
        entry = entry_for(rig, region)
        frame = entry.local_copies[0]
        assert rig.numa.handle_frame_failure(frame, acting_cpu=0) is True
        assert entry.state is PageState.GLOBAL_WRITABLE
        assert entry.owner is None
        assert entry.local_copies == {}
        assert rig.machine.memory.local_offline(0) == 1
        assert rig.numa.stats.frames_offlined == 1

    def test_page_survives_and_refaults_after_frame_loss(self):
        """Dirty content is written back; the next touch re-faults."""
        rig = make_rig()
        region = map_shared(rig)
        rig.faults.handle(0, region.vpage_at(0), AccessKind.WRITE)
        entry = entry_for(rig, region)
        token = rig.machine.memory.read_token(entry.local_copies[0])
        rig.numa.handle_frame_failure(entry.local_copies[0], acting_cpu=0)
        assert rig.machine.memory.read_token(entry.global_frame) == token
        frame = rig.faults.handle(0, region.vpage_at(0), AccessKind.READ)
        assert frame is not None

    def test_offline_frame_is_never_reallocated(self):
        rig = make_rig(local_pages_per_cpu=2, global_pages=64)
        region = map_shared(rig, pages=8)
        rig.faults.handle(0, region.vpage_at(0), AccessKind.WRITE)
        entry = entry_for(rig, region)
        dead = entry.local_copies[0]
        rig.numa.handle_frame_failure(dead, acting_cpu=0)
        assert dead not in rig.machine.memory.online_local_frames()
        # Touch many more pages on cpu 0: the retired frame must not
        # come back even though the pool is starved.
        for offset in range(1, 8):
            rig.faults.handle(0, region.vpage_at(offset), AccessKind.READ)
        used = set()
        for other in rig.numa.directory.entries():
            used.update(other.local_copies.values())
        assert dead not in used

    def test_failure_of_a_free_frame_just_retires_it(self):
        rig = make_rig()
        from repro.machine.memory import Frame, FrameKind

        free_frame = Frame(FrameKind.LOCAL, 2, 7)
        assert rig.numa.handle_frame_failure(free_frame, acting_cpu=0) is False
        assert rig.machine.memory.local_offline(2) == 1

    def test_injector_pump_fires_scheduled_frame_failures(self):
        plan = FaultPlan(
            FaultProfile(
                name="t",
                frame_fail_interval_us=100.0,
                max_frame_failures=2,
            ),
            seed=7,
        )
        rig, injector = make_chaos_rig(plan)
        # Each pump fires at most one scheduled failure (the redrawn
        # deadline starts from *now*), so advance time across calls.
        injector.pump(1_000_000.0, rig.numa)
        injector.pump(3_000_000.0, rig.numa)
        injector.pump(5_000_000.0, rig.numa)  # capped: fires nothing
        assert injector.stats.injected["frame-fail"] == 2
        assert injector.stats.frames_offlined == 2


class TestPressure:
    def test_spike_opens_a_window_and_downgrades_placement(self):
        plan = FaultPlan(
            FaultProfile(
                name="t",
                pressure_interval_us=100.0,
                pressure_duration_us=500.0,
            ),
            seed=7,
        )
        rig, injector = make_chaos_rig(plan)
        injector.pump(200.0, rig.numa)
        assert injector.stats.injected["pressure-spike"] == 1
        pressured = [
            cpu for cpu in range(4) if injector.pressure_active(cpu, 300.0)
        ]
        assert len(pressured) == 1
        cpu = pressured[0]
        assert not injector.pressure_active(cpu, 10_000.0)

    def test_pressured_cpu_places_pages_in_global(self):
        plan = FaultPlan(
            FaultProfile(
                name="t",
                pressure_interval_us=1.0,
                pressure_duration_us=10_000_000.0,
            ),
            seed=7,
        )
        rig, injector = make_chaos_rig(plan)
        # Open a pressure window on every CPU (spikes pick a random
        # victim, so fire plenty of them at advancing timestamps).
        for step in range(1, 65):
            injector.pump(1_000.0 * step, rig.numa)
        assert all(
            injector.pressure_active(cpu, 65_000.0) for cpu in range(4)
        )
        region = map_shared(rig)
        # First touch zero-fills; a second CPU's read would normally
        # replicate into local memory but must fall back to global.
        rig.faults.handle(0, region.vpage_at(0), AccessKind.READ)
        rig.faults.handle(1, region.vpage_at(0), AccessKind.READ)
        assert injector.stats.pressure_fallbacks >= 1
        assert rig.numa.stats.local_memory_fallbacks >= 1


class TestMessageDelay:
    def test_delay_charged_to_simulated_time(self):
        plan = FaultPlan(
            FaultProfile(
                name="t", message_delay_rate=1.0, message_delay_us=40.0
            ),
            seed=7,
        )
        rig, injector = make_chaos_rig(plan)
        region = map_shared(rig)
        rig.faults.handle(0, region.vpage_at(0), AccessKind.READ)
        assert injector.stats.message_delays >= 1
        assert injector.stats.injected_delay_us >= 40.0
