"""Harness chaos: deterministic, order-independent orchestrator faults."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.faults.harness import (
    HARNESS_PROFILES,
    HarnessChaosPlan,
    HarnessChaosProfile,
    get_harness_profile,
    make_harness_plan,
)


class TestProfiles:
    def test_named_profiles_validate(self):
        for profile in HARNESS_PROFILES.values():
            profile.validate()

    def test_lookup_is_case_insensitive(self):
        assert get_harness_profile("MAYHEM") is HARNESS_PROFILES["mayhem"]
        assert get_harness_profile(" none ") is HARNESS_PROFILES["none"]

    def test_unknown_profile_names_every_choice(self):
        with pytest.raises(ConfigurationError) as excinfo:
            get_harness_profile("tornado")
        message = str(excinfo.value)
        for name in HARNESS_PROFILES:
            assert name in message

    def test_out_of_range_rates_rejected(self):
        with pytest.raises(ConfigurationError):
            HarnessChaosProfile(name="bad", kill_rate=1.5).validate()
        with pytest.raises(ConfigurationError):
            HarnessChaosProfile(name="bad", hang_s=-1.0).validate()


class TestPlanDeterminism:
    def test_decisions_are_pure_functions_of_the_key(self):
        """The same (seed, fp, attempt) draws the same fate in any order
        — the property that makes chaos reproducible under a pool whose
        completion order the host controls."""
        fps = [f"fp-{i:02d}" for i in range(40)]
        forward = make_harness_plan("mayhem", seed=7)
        backward = make_harness_plan("mayhem", seed=7)
        a = {fp: forward.worker_action(fp, 1) for fp in fps}
        b = {fp: backward.worker_action(fp, 1) for fp in reversed(fps)}
        assert a == b
        assert forward.fired == backward.fired

    def test_seed_changes_the_schedule(self):
        fps = [f"fp-{i:02d}" for i in range(60)]
        one = make_harness_plan("worker-kill", seed=1)
        two = make_harness_plan("worker-kill", seed=2)
        fates_one = [one.would_disturb(fp, 1) for fp in fps]
        fates_two = [two.would_disturb(fp, 1) for fp in fps]
        assert fates_one != fates_two

    def test_would_disturb_matches_worker_action_without_tallying(self):
        plan = make_harness_plan("mayhem", seed=3)
        fps = [f"fp-{i:02d}" for i in range(30)]
        predicted = {fp: plan.would_disturb(fp, 1) for fp in fps}
        assert plan.fired == {"kill": 0, "hang": 0, "corrupt": 0}
        actual = {fp: plan.worker_action(fp, 1) is not None for fp in fps}
        assert predicted == actual

    def test_nothing_fires_at_or_above_the_attempt_gate(self):
        """Actions only hit first attempts, so any policy with two or
        more attempts is guaranteed to converge."""
        plan = make_harness_plan("mayhem", seed=0)
        for i in range(50):
            assert plan.worker_action(f"fp-{i}", 2) is None
            assert not plan.would_disturb(f"fp-{i}", 2)

    def test_none_profile_never_fires(self):
        plan = make_harness_plan("none", seed=0)
        for i in range(50):
            assert plan.worker_action(f"fp-{i}", 1) is None
            assert not plan.corrupts_entry(f"fp-{i}")

    def test_kill_wins_over_hang(self):
        profile = HarnessChaosProfile(
            name="always", kill_rate=1.0, hang_rate=1.0
        )
        plan = HarnessChaosPlan(profile, seed=0)
        assert plan.worker_action("fp", 1) == {"kill": True}
        assert plan.fired["kill"] == 1
        assert plan.fired["hang"] == 0


class TestCorruption:
    def test_corrupt_file_truncates_but_keeps_the_file(self, tmp_path):
        path = tmp_path / "entry.json"
        payload = json.dumps({"schema": "x", "outcome": list(range(100))})
        path.write_text(payload)
        plan = make_harness_plan("cache-corrupt", seed=0)
        plan.corrupt_file(path)
        assert path.exists()
        damaged = path.read_text()
        assert 0 < len(damaged) < len(payload)
        with pytest.raises(ValueError):
            json.loads(damaged)

    def test_corrupts_entry_is_per_fingerprint_deterministic(self):
        one = make_harness_plan("cache-corrupt", seed=5)
        two = make_harness_plan("cache-corrupt", seed=5)
        fps = [f"fp-{i:02d}" for i in range(40)]
        fates = [one.corrupts_entry(fp) for fp in fps]
        assert fates == [two.corrupts_entry(fp) for fp in fps]
        assert any(fates)  # rate 0.5 over 40 independent draws
        assert one.fired["corrupt"] == sum(fates)

    def test_corrupt_file_survives_missing_path(self, tmp_path):
        plan = make_harness_plan("cache-corrupt", seed=0)
        plan.corrupt_file(tmp_path / "nope.json")  # must not raise
