"""Spin locks and the Unix-master syscall model."""

from repro.sim.ops import Compute, MemBlock, Syscall
from repro.threads.spinlock import SpinLock
from repro.threads.unix_master import (
    PAPER_PATCHED_CALLS,
    UnixMaster,
    syscall,
)


class TestSpinLock:
    def test_acquire_emits_test_and_set(self):
        lock = SpinLock(vpage=100)
        ops = list(lock.acquire())
        mem = [op for op in ops if isinstance(op, MemBlock)]
        assert len(mem) == 1
        assert mem[0].vpage == 100
        assert mem[0].reads == 1 and mem[0].writes == 1

    def test_release_emits_single_store(self):
        lock = SpinLock(vpage=100)
        ops = list(lock.release())
        mem = [op for op in ops if isinstance(op, MemBlock)]
        assert mem[0].writes == 1 and mem[0].reads == 0

    def test_acquisition_counter(self):
        lock = SpinLock(vpage=100)
        list(lock.acquire())
        list(lock.release())
        list(lock.acquire())
        list(lock.release())
        assert lock.acquisitions == 2

    def test_critical_section_wraps_body(self):
        lock = SpinLock(vpage=100)
        body = [Compute(5.0)]
        ops = list(lock.critical_section(iter(body)))
        assert any(isinstance(op, Compute) and op.us == 5.0 for op in ops)
        mem = [op for op in ops if isinstance(op, MemBlock)]
        assert len(mem) == 2  # acquire + release

    def test_vpage_property(self):
        assert SpinLock(vpage=42).vpage == 42


class TestUnixMaster:
    def test_defaults_to_cpu_zero(self):
        assert UnixMaster().master_cpu == 0

    def test_unpatched_call_keeps_user_memory_traffic(self):
        master = UnixMaster()
        call = syscall("fstat", 120.0, [(10, 4, 2)])
        effective = master.effective_syscall(call)
        assert effective.touched == ((10, 4, 2),)

    def test_patched_call_loses_user_memory_traffic(self):
        """The paper's ad hoc fix for sigvec, fstat and ioctl."""
        master = UnixMaster(patched_calls=PAPER_PATCHED_CALLS)
        call = syscall("fstat", 120.0, [(10, 4, 2)])
        effective = master.effective_syscall(call)
        assert effective.touched == ()
        assert effective.service_us == 120.0

    def test_unknown_call_unaffected_by_patches(self):
        master = UnixMaster(patched_calls=PAPER_PATCHED_CALLS)
        call = syscall("read", 200.0, [(11, 8, 0)])
        assert master.effective_syscall(call).touched == ((11, 8, 0),)

    def test_calls_served_counter(self):
        master = UnixMaster()
        master.effective_syscall(syscall("read", 1.0))
        master.effective_syscall(syscall("write", 1.0))
        assert master.calls_served == 2

    def test_paper_patched_set(self):
        assert PAPER_PATCHED_CALLS == {"sigvec", "fstat", "ioctl"}

    def test_syscall_helper_builds_op(self):
        call = syscall("ioctl", 50.0, [(1, 2, 3)])
        assert isinstance(call, Syscall)
        assert call.name == "ioctl"
        assert call.service_us == 50.0
