"""Scheduling models: binding vs global-queue migration (Section 4.7)."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.ops import Compute
from repro.threads.cthreads import CThread
from repro.threads.scheduler import AffinityScheduler, GlobalQueueScheduler


def thread(index: int) -> CThread:
    return CThread(name=f"t{index}", index=index, body=iter(()))


class TestAffinityScheduler:
    def test_sequential_binding(self):
        scheduler = AffinityScheduler(4)
        assert [scheduler.cpu_for(thread(i), 0) for i in range(4)] == [0, 1, 2, 3]

    def test_wraps_when_more_threads_than_cpus(self):
        scheduler = AffinityScheduler(2)
        assert scheduler.cpu_for(thread(5), 0) == 1

    def test_binding_is_stable_over_rounds(self):
        scheduler = AffinityScheduler(3)
        t = thread(1)
        assert all(scheduler.cpu_for(t, r) == 1 for r in range(100))

    def test_never_migrates(self):
        scheduler = AffinityScheduler(3)
        for r in range(50):
            scheduler.cpu_for(thread(0), r)
        assert scheduler.migrations() == 0

    def test_needs_a_processor(self):
        with pytest.raises(ConfigurationError):
            AffinityScheduler(0)


class TestGlobalQueueScheduler:
    def test_thread_drifts_across_processors(self):
        scheduler = GlobalQueueScheduler(4, migration_period=10)
        t = thread(0)
        cpus = {scheduler.cpu_for(t, r) for r in range(0, 40, 10)}
        assert len(cpus) == 4

    def test_stable_within_a_period(self):
        scheduler = GlobalQueueScheduler(4, migration_period=10)
        t = thread(0)
        assert len({scheduler.cpu_for(t, r) for r in range(10)}) == 1

    def test_migrations_counted(self):
        scheduler = GlobalQueueScheduler(4, migration_period=5)
        t = thread(0)
        for r in range(20):
            scheduler.cpu_for(t, r)
        assert scheduler.migrations() == 3

    def test_deterministic(self):
        a = GlobalQueueScheduler(4, migration_period=7)
        b = GlobalQueueScheduler(4, migration_period=7)
        t = thread(2)
        assert [a.cpu_for(t, r) for r in range(30)] == [
            b.cpu_for(t, r) for r in range(30)
        ]

    def test_bad_period_rejected(self):
        with pytest.raises(ConfigurationError):
            GlobalQueueScheduler(4, migration_period=0)


class TestCThread:
    def test_body_iteration_and_finish(self):
        t = CThread(name="t", index=0, body=iter([Compute(1.0)]))
        op = t.next_op()
        assert isinstance(op, Compute)
        assert not t.finished
        assert t.next_op() is None
        assert t.finished
        assert t.ops_executed == 1
